// Package engine executes ETL workflows over real records. The paper
// treats workflows as operational processes run in a nightly time window;
// this package is that runtime substrate. Three execution modes are
// provided: a materialized mode that evaluates nodes in topological order
// (deterministic, easy to debug), a pipelined mode that runs every
// activity as a goroutine connected by channels, matching the paper's
// observation that activities "are allowed to output data to one another"
// without intermediate data stores, and a partition-parallel mode that
// splits every recordset across P partitions and executes each activity
// partition by partition, exchanging rows by key where an operator's
// semantics demand it (see parallel.go). All three modes produce
// bit-identical target rows.
//
// Beyond running workflows, the engine is the empirical half of the
// correctness framework: two states are equivalent when, on the same
// input, they load the same record multisets into every target (§3.4), and
// the tests exercise every transition against this oracle.
package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"etlopt/internal/data"
	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// Mode selects the execution strategy.
type Mode uint8

// Execution modes.
const (
	// Materialized evaluates nodes one by one in topological order,
	// materializing each node's full output.
	Materialized Mode = iota
	// Pipelined runs one goroutine per node, streaming records through
	// channels; blocking operations (aggregations, duplicate checks,
	// difference) buffer internally as needed.
	Pipelined
	// Parallel partitions every recordset across P partition workers,
	// executes order-preserving operators partition-locally, repartitions
	// by key for key-sensitive operators, and merges partitions with an
	// order-stable reduce so output is bit-identical to Materialized at
	// any partition count. See WithPartitions.
	Parallel
)

// String names the mode as it appears in metric labels and journal events.
func (m Mode) String() string {
	switch m {
	case Materialized:
		return "materialized"
	case Pipelined:
		return "pipelined"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Engine executes workflows against bound recordsets.
type Engine struct {
	mode     Mode
	bindings map[string]data.Recordset
	batch    int
	// partitions is Parallel mode's worker count; 0 means GOMAXPROCS.
	partitions int
	// metrics, when non-nil, receives the engine's observability series
	// (see WithMetrics); nil disables collection.
	metrics *obs.Registry
	// journal, when non-nil, receives the flight-recorder event stream of
	// each run (see WithJournal); nil disables emission.
	journal *obs.Journal
	// pprofLabels tags partition workers with runtime/pprof labels (see
	// WithPprofLabels).
	pprofLabels bool
	// lookups, when non-nil, is a run-scoped shared cache of materialized
	// surrogate-key/lookup tables: Parallel mode builds each table once and
	// every partition references the same read-only map.
	lookups *lookupCache
	// faults, when non-nil, is the armed fault-injection plan (see
	// WithFaultPlan); nil disables every injection point.
	faults *fault.Plan
	// retry is the per-node retry policy (see WithRetry); the zero value
	// runs every node exactly once.
	retry fault.Policy
}

// Option configures an Engine.
type Option func(*Engine)

// WithMode selects the execution mode (default Materialized).
func WithMode(m Mode) Option { return func(e *Engine) { e.mode = m } }

// WithBatchSize sets the pipelined mode's channel batch size (default 64).
func WithBatchSize(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.batch = n
		}
	}
}

// WithPartitions sets Parallel mode's partition count (default: the
// number of CPUs). Any count produces bit-identical output; the count
// only affects how the work is spread. Ignored by the other modes.
func WithPartitions(n int) Option {
	return func(e *Engine) {
		if n > 0 {
			e.partitions = n
		}
	}
}

// New creates an engine over the given recordset bindings: every source
// recordset and surrogate-key lookup referenced by a workflow must be
// bound by name. Target recordsets may be bound (rows are loaded into
// them) or unbound (rows are only reported in the RunResult).
func New(bindings map[string]data.Recordset, opts ...Option) *Engine {
	e := &Engine{
		mode:     Materialized,
		bindings: bindings,
		batch:    64,
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// RunResult reports one workflow execution.
type RunResult struct {
	// Targets maps each target recordset name to the rows loaded into it.
	Targets map[string]data.Rows
	// NodeRows reports how many rows each node emitted — the engine's
	// observability hook and the empirical counterpart of the cost model's
	// cardinalities.
	NodeRows map[workflow.NodeID]int
	// Elapsed is the wall-clock execution time.
	Elapsed time.Duration
}

// Run executes the workflow and returns the loaded target rows. The graph
// must be validated and have regenerated schemata. Cancelling ctx stops
// the run at the next node (materialized and parallel modes) or batch
// (pipelined mode) boundary and returns an error wrapping ctx.Err(); rows
// already loaded into bound targets stay loaded.
func (e *Engine) Run(ctx context.Context, g *workflow.Graph) (*RunResult, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	start := time.Now()
	var (
		res *RunResult
		err error
	)
	partitions := 0
	if e.mode == Parallel {
		partitions = e.partitionCount()
	}
	modeName := e.mode.String()
	rm := e.newRunMetrics(g, partitions)
	if e.journal != nil {
		e.journal.Emit(obs.RunEvent("start", "engine/"+modeName))
		defer e.journal.Emit(obs.RunEvent("end", "engine/"+modeName))
	}
	span := e.metrics.StartSpan("engine/" + modeName)
	rm.setSpan(span)
	switch e.mode {
	case Materialized:
		res, err = e.runMaterialized(ctx, g, rm)
	case Pipelined:
		res, err = e.runPipelined(ctx, g, rm)
	case Parallel:
		res, err = e.runParallel(ctx, g, rm)
	default:
		span.End()
		return nil, fmt.Errorf("engine: unknown mode %d", e.mode)
	}
	span.End()
	if err != nil {
		return nil, err
	}
	res.Elapsed = time.Since(start)
	e.recordRun(g, res, modeName)
	return res, nil
}

// runMaterialized evaluates the graph node by node in topological order,
// checking for cancellation between nodes.
func (e *Engine) runMaterialized(ctx context.Context, g *workflow.Graph, rm *runMetrics) (*RunResult, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	out := make(map[workflow.NodeID]data.Rows, len(order))
	res := &RunResult{
		Targets:  make(map[string]data.Rows),
		NodeRows: make(map[workflow.NodeID]int),
	}
	rowsSoFar := 0
	for _, id := range order {
		n := g.Node(id)
		if err := ctx.Err(); err != nil {
			// Surface where the run stopped, not just that it stopped: the
			// next activity that would have run and the progress made.
			return nil, fmt.Errorf("engine: run cancelled before node %d (%s) after %d rows: %w",
				id, n.Label(), rowsSoFar, err)
		}
		body := func() error {
			return e.execMaterializedNode(ctx, g, id, n, out, res, rm)
		}
		var err error
		if n.Kind == workflow.KindActivity {
			err = e.runNodeJournaled(ctx, id, n, rm, func() int { return len(out[id]) }, body)
		} else {
			err = e.runNode(ctx, id, n, body)
		}
		if err != nil {
			return nil, err
		}
		res.NodeRows[id] = len(out[id])
		rowsSoFar += len(out[id])
		rm.rows(id).Add(int64(len(out[id])))
	}
	return res, nil
}

// execMaterializedNode is one node's retryable body: fault checks frame
// the computation so every side effect — recording the output, loading a
// bound target — happens strictly after the node's last injection point,
// making a retried node idempotent from the outside.
func (e *Engine) execMaterializedNode(ctx context.Context, g *workflow.Graph, id workflow.NodeID, n *workflow.Node, out map[workflow.NodeID]data.Rows, res *RunResult, rm *runMetrics) error {
	if err := e.checkFault(ctx, fault.SiteNodeStart, id, n, 0); err != nil {
		return err
	}
	switch n.Kind {
	case workflow.KindRecordset:
		preds := g.Providers(id)
		if len(preds) == 0 {
			rows, err := e.scanSource(n)
			if err != nil {
				return err
			}
			if err := e.checkFault(ctx, fault.SiteEmit, id, n, 0); err != nil {
				return err
			}
			out[id] = rows
			return nil
		}
		rows := e.projectForTarget(out[preds[0]], g.Node(preds[0]).Out, n.RS.Schema)
		if err := e.checkFault(ctx, fault.SiteEmit, id, n, 0); err != nil {
			return err
		}
		out[id] = rows
		res.Targets[n.RS.Name] = rows
		if rs, ok := e.bindings[n.RS.Name]; ok {
			if err := rs.Load(rows); err != nil {
				return fmt.Errorf("engine: loading target %s: %w", n.RS.Name, err)
			}
		}
	case workflow.KindActivity:
		preds := g.Providers(id)
		inputs := make([]data.Rows, len(preds))
		schemas := make([]data.Schema, len(preds))
		for i, p := range preds {
			inputs[i] = out[p]
			schemas[i] = g.Node(p).Out
		}
		rows, err := e.execActivityTimed(id, n, schemas, inputs, rm)
		if err != nil {
			return fmt.Errorf("engine: activity %d (%s): %w", id, n.Label(), err)
		}
		if err := e.checkFault(ctx, fault.SiteEmit, id, n, 0); err != nil {
			return err
		}
		out[id] = rows
	}
	return nil
}

// execActivityTimed runs one activity, observing its latency into the
// per-node stage histogram and a per-node child span when either sink is
// enabled; with both off the clock is never read. The journal's node
// event is emitted by the caller after the node (retries included)
// succeeds, so a journal records one node event per completed node.
func (e *Engine) execActivityTimed(id workflow.NodeID, n *workflow.Node, schemas []data.Schema, inputs []data.Rows, rm *runMetrics) (data.Rows, error) {
	h := rm.latency(id)
	if h == nil && !rm.spanning() {
		return e.execActivity(n, schemas, inputs)
	}
	sp := rm.nodeSpan(id)
	start := time.Now()
	rows, err := e.execActivity(n, schemas, inputs)
	sec := time.Since(start).Seconds()
	sp.End()
	h.Observe(sec)
	return rows, err
}

// scanSource reads a source recordset through its binding.
func (e *Engine) scanSource(n *workflow.Node) (data.Rows, error) {
	rs, ok := e.bindings[n.RS.Name]
	if !ok {
		return nil, fmt.Errorf("engine: source recordset %q not bound", n.RS.Name)
	}
	if !rs.Schema().SameSet(n.RS.Schema) {
		return nil, fmt.Errorf("engine: source %q bound with schema {%s}, workflow declares {%s}",
			n.RS.Name, data.Schema(rs.Schema()), n.RS.Schema)
	}
	rows, err := rs.Scan()
	if err != nil {
		return nil, fmt.Errorf("engine: scanning %s: %w", n.RS.Name, err)
	}
	// Re-project in case the binding's attribute order differs.
	if !rs.Schema().Equal(n.RS.Schema) {
		src := rs.Schema()
		re := make(data.Rows, len(rows))
		for i, r := range rows {
			re[i] = r.Project(src, n.RS.Schema)
		}
		rows = re
	}
	return rows, nil
}

// projectForTarget lays provider rows out in the target recordset's
// attribute order.
func (e *Engine) projectForTarget(rows data.Rows, src, target data.Schema) data.Rows {
	if src.Equal(target) {
		return rows
	}
	out := make(data.Rows, len(rows))
	for i, r := range rows {
		out[i] = r.Project(src, target)
	}
	return out
}

// lookupTable materializes a surrogate-key lookup binding as a map from
// production-key value to surrogate value. The lookup recordset's first
// attribute is the production key, its second the surrogate. When the
// engine carries a run-scoped lookup cache (Parallel mode), the table is
// built once and shared read-only by every partition.
func (e *Engine) lookupTable(name string) (map[string]data.Value, error) {
	if e.lookups != nil {
		return e.lookups.table(name, e.buildLookupTable)
	}
	return e.buildLookupTable(name)
}

func (e *Engine) buildLookupTable(name string) (map[string]data.Value, error) {
	rs, ok := e.bindings[name]
	if !ok {
		return nil, fmt.Errorf("lookup recordset %q not bound", name)
	}
	rows, err := rs.Scan()
	if err != nil {
		return nil, err
	}
	m := make(map[string]data.Value, len(rows))
	for _, r := range rows {
		if len(r) < 2 {
			return nil, fmt.Errorf("lookup %q: row %s has fewer than 2 attributes", name, r)
		}
		m[r[0].Key()] = r[1]
	}
	return m, nil
}

// keySet materializes a lookup binding as the set of its row keys (for
// lookup-based primary-key checks), sharing the run-scoped cache when one
// is attached.
func (e *Engine) keySet(name string) (map[string]bool, error) {
	if e.lookups != nil {
		return e.lookups.set(name, e.buildKeySet)
	}
	return e.buildKeySet(name)
}

func (e *Engine) buildKeySet(name string) (map[string]bool, error) {
	rs, ok := e.bindings[name]
	if !ok {
		return nil, fmt.Errorf("lookup recordset %q not bound", name)
	}
	rows, err := rs.Scan()
	if err != nil {
		return nil, err
	}
	m := make(map[string]bool, len(rows))
	for _, r := range rows {
		var key string
		for i, v := range r {
			if i > 0 {
				key += "\x1f"
			}
			key += v.Key()
		}
		m[key] = true
	}
	return m, nil
}

// SortTargets returns the target names of a result in sorted order, for
// deterministic reporting.
func (r *RunResult) SortTargets() []string {
	names := make([]string, 0, len(r.Targets))
	for n := range r.Targets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
