package engine

import (
	"context"
	"errors"
	"testing"

	"etlopt/internal/templates"
)

// TestRunCancelled verifies both execution modes abort with ctx.Err()
// when the context is cancelled before the run starts.
func TestRunCancelled(t *testing.T) {
	sc := templates.Fig1Scenario(80, 240)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []struct {
		name string
		mode Mode
	}{{"materialized", Materialized}, {"pipelined", Pipelined}, {"parallel", Parallel}} {
		t.Run(mode.name, func(t *testing.T) {
			res, err := New(sc.Bind(), WithMode(mode.mode)).Run(ctx, sc.Graph)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res != nil {
				t.Error("cancelled run should not return a result")
			}
		})
	}
}

// TestCheckpointRunCancelled verifies the checkpoint runner treats
// cancellation like a crash: the error is ctx.Err(), the staging area
// survives, and a fresh run resumes and completes.
func TestCheckpointRunCancelled(t *testing.T) {
	sc := templates.Fig1Scenario(50, 150)
	dir := t.TempDir()
	cr, err := NewCheckpointRunner(New(sc.Bind()), dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cr.Run(ctx, sc.Graph); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Resume with a live context must succeed.
	res, err := cr.Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range plain.Targets {
		if len(res.Targets[name]) != len(rows) {
			t.Errorf("target %s: resumed run loaded %d rows, direct run %d",
				name, len(res.Targets[name]), len(rows))
		}
	}
}
