package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
)

// crashStaging runs the scenario with a once-failing PARTS2 so the run
// dies mid-workflow, leaving a partially populated staging area, and
// returns the staging dir. The damage functions below then corrupt it.
func crashStaging(t *testing.T, sc *templates.Scenario) string {
	t.Helper()
	bindings := sc.Bind()
	failures := 1
	bindings["PARTS2"] = failingRecordset{Recordset: bindings["PARTS2"], failuresLeft: &failures}
	dir := filepath.Join(t.TempDir(), "stage")
	cr, err := NewCheckpointRunner(New(bindings), dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Run(context.Background(), sc.Graph); !errors.Is(err, errInjected) {
		t.Fatalf("setup run should fail with the injected error, got %v", err)
	}
	staged, err := cr.Staged()
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) == 0 {
		t.Fatal("setup crash staged nothing")
	}
	return dir
}

// TestCheckpointStagingDamage drives the resume path through every way a
// staging area can be wrong on disk. A manifest that is corrupt,
// truncated, or empty reads as a signature mismatch: the stale stages
// are discarded and the run recomputes everything — correctly. Orphan
// node files for IDs the workflow doesn't have are ignored. A staged CSV
// damaged after the manifest was accepted is the one unrecoverable case:
// the resume surfaces a read error rather than loading garbage.
func TestCheckpointStagingDamage(t *testing.T) {
	cases := []struct {
		name    string
		damage  func(t *testing.T, dir string)
		wantErr bool
	}{
		{
			name: "corrupt manifest",
			damage: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("garbage signature\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "truncated manifest",
			damage: func(t *testing.T, dir string) {
				b, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), b[:len(b)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "empty manifest",
			damage: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "orphan stage files",
			damage: func(t *testing.T, dir string) {
				// IDs far outside the graph: present on disk, never consulted.
				for _, name := range []string{"node-999.csv", "node-1000.csv"} {
					if err := os.WriteFile(filepath.Join(dir, name), []byte("A,B\n1,2\n"), 0o644); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			name: "corrupt staged csv",
			damage: func(t *testing.T, dir string) {
				entries, err := filepath.Glob(filepath.Join(dir, "node-*.csv"))
				if err != nil || len(entries) == 0 {
					t.Fatalf("no staged files to corrupt: %v", err)
				}
				// An unbalanced quote makes the CSV unreadable past the header.
				if err := os.WriteFile(entries[0], []byte("A,B\n\"unclosed,1\n2,3\n"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sc := templates.Fig1Scenario(50, 150)
			dir := crashStaging(t, sc)
			c.damage(t, dir)
			cr, err := NewCheckpointRunner(New(sc.Bind()), dir)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cr.Run(context.Background(), sc.Graph)
			if c.wantErr {
				if err == nil {
					t.Fatal("resume over damaged stage should fail, succeeded instead")
				}
				return
			}
			if err != nil {
				t.Fatalf("resume failed: %v", err)
			}
			plain, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Targets["DW.PARTS"].EqualMultiset(plain.Targets["DW.PARTS"]) {
				t.Error("resumed run differs from a clean run")
			}
			staged, err := cr.Staged()
			if err != nil {
				t.Fatal(err)
			}
			if len(staged) != 0 {
				t.Errorf("staging not cleared after success: %v", staged)
			}
		})
	}
}

// cancellingRecordset cancels the run's context from inside its own scan
// — the scan itself succeeds, so the node is staged before the runner
// notices the cancellation at the next node boundary.
type cancellingRecordset struct {
	data.Recordset
	cancel context.CancelFunc
	scans  *int
}

func (c cancellingRecordset) Scan() (data.Rows, error) {
	*c.scans++
	c.cancel()
	return c.Recordset.Scan()
}

// Cancellation mid-run behaves exactly like the crash the runner exists
// to survive: the staging area stays intact and a later run resumes from
// it without repeating the completed scans.
func TestCheckpointResumeAfterCancellation(t *testing.T) {
	sc := templates.Fig1Scenario(50, 150)
	bindings := sc.Bind()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	scans := 0
	bindings["PARTS2"] = cancellingRecordset{Recordset: bindings["PARTS2"], cancel: cancel, scans: &scans}

	dir := filepath.Join(t.TempDir(), "stage")
	cr, err := NewCheckpointRunner(New(bindings), dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cr.Run(ctx, sc.Graph); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run should return context.Canceled, got %v", err)
	}
	staged, err := cr.Staged()
	if err != nil {
		t.Fatal(err)
	}
	if len(staged) == 0 {
		t.Fatal("cancellation left nothing staged")
	}

	// Resume with a fresh context: completes, reuses the staged scan.
	res, err := cr.Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatalf("resume after cancellation failed: %v", err)
	}
	if scans != 1 {
		t.Errorf("PARTS2 scanned %d times; the staged output should have been reused", scans)
	}
	plain, err := New(sc.Bind()).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Targets["DW.PARTS"].EqualMultiset(plain.Targets["DW.PARTS"]) {
		t.Error("resumed run differs from a clean run")
	}
}
