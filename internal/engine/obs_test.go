package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"etlopt/internal/obs"
	"etlopt/internal/templates"
)

// TestMetricsDoNotAffectExecution pins that attaching a registry changes
// nothing about a run's results, in either mode.
func TestMetricsDoNotAffectExecution(t *testing.T) {
	sc := templates.Fig1Scenario(120, 360)
	for _, mode := range []struct {
		name string
		mode Mode
	}{{"materialized", Materialized}, {"pipelined", Pipelined}} {
		t.Run(mode.name, func(t *testing.T) {
			plain, err := New(sc.Bind(), WithMode(mode.mode)).Run(context.Background(), sc.Graph)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			instr, err := New(sc.Bind(), WithMode(mode.mode), WithMetrics(reg)).Run(context.Background(), sc.Graph)
			if err != nil {
				t.Fatal(err)
			}
			for name, rows := range plain.Targets {
				if len(instr.Targets[name]) != len(rows) {
					t.Errorf("target %s: %d rows with metrics, %d without",
						name, len(instr.Targets[name]), len(rows))
				}
			}
			for id, n := range plain.NodeRows {
				if instr.NodeRows[id] != n {
					t.Errorf("node %d: %d rows with metrics, %d without", id, instr.NodeRows[id], n)
				}
			}
		})
	}
}

// TestEngineMetricsSeries checks the exported series of an instrumented
// run: the run counter, per-node emitted rows matching RunResult.NodeRows,
// stage latencies, and the observed-vs-modeled selectivity gauges.
func TestEngineMetricsSeries(t *testing.T) {
	sc := templates.Fig1Scenario(120, 360)
	reg := obs.NewRegistry()
	res, err := New(sc.Bind(), WithMetrics(reg)).Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if v, ok := snap.CounterValue(`engine_runs_total{mode="materialized"}`); !ok || v != 1 {
		t.Fatalf("engine_runs_total = %d, %v; want 1", v, ok)
	}
	for id, want := range res.NodeRows {
		key := nodeKey(id, sc.Graph.Node(id))
		got, ok := snap.CounterValue(`engine_rows_out_total{node="` + key + `"}`)
		if !ok || got != int64(want) {
			t.Errorf("rows counter for node %s = %d, %v; want %d", key, got, ok, want)
		}
	}
	var sawLatency, sawSel bool
	for _, h := range snap.Histograms {
		if strings.HasPrefix(h.Series, "engine_node_seconds{") && h.Count > 0 {
			sawLatency = true
		}
	}
	// Every observed-selectivity gauge must pair with a modeled one, and
	// observed values must be valid selectivities for unary activities.
	for _, g := range snap.Gauges {
		if !strings.HasPrefix(g.Series, "engine_selectivity_observed{") {
			continue
		}
		sawSel = true
		modeled := strings.Replace(g.Series, "engine_selectivity_observed", "engine_selectivity_modeled", 1)
		if !snap.Has(modeled) {
			t.Errorf("observed gauge %s has no modeled twin", g.Series)
		}
		if g.Value < 0 || g.Value > 1.5 {
			t.Errorf("implausible observed selectivity %s = %v", g.Series, g.Value)
		}
	}
	if !sawLatency {
		t.Error("no per-node stage latency recorded")
	}
	if !sawSel {
		t.Error("no observed selectivity recorded")
	}
	if v, ok := snap.CounterValue(`engine_runs_total{mode="pipelined"}`); ok && v != 0 {
		t.Errorf("pipelined run counter unexpectedly %d", v)
	}
}

// TestCancellationErrorIsDiagnosable covers the wrapped context errors:
// aborted runs must name where they stopped and how many rows had been
// processed, while still satisfying errors.Is(err, context.Canceled).
func TestCancellationErrorIsDiagnosable(t *testing.T) {
	sc := templates.Fig1Scenario(80, 240)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t.Run("materialized", func(t *testing.T) {
		_, err := New(sc.Bind()).Run(ctx, sc.Graph)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "cancelled before node") || !strings.Contains(msg, "rows") {
			t.Fatalf("materialized cancellation error not diagnosable: %q", msg)
		}
	})
	t.Run("pipelined", func(t *testing.T) {
		_, err := New(sc.Bind(), WithMode(Pipelined)).Run(ctx, sc.Graph)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "pipelined run cancelled") || !strings.Contains(msg, "rows") {
			t.Fatalf("pipelined cancellation error not diagnosable: %q", msg)
		}
	})
}

// TestPipelinedMetricsUnderRace exercises the instrumented pipelined mode
// (concurrent counters, backpressure probes, per-batch latency) — most
// valuable under -race.
func TestPipelinedMetricsUnderRace(t *testing.T) {
	sc := templates.Fig1Scenario(300, 900)
	reg := obs.NewRegistry()
	// A tiny batch size forces many sends per edge, exercising the
	// backpressure probe path.
	res, err := New(sc.Bind(), WithMode(Pipelined), WithBatchSize(8), WithMetrics(reg)).
		Run(context.Background(), sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for id, want := range res.NodeRows {
		key := nodeKey(id, sc.Graph.Node(id))
		got, ok := snap.CounterValue(`engine_rows_out_total{node="` + key + `"}`)
		if !ok || got != int64(want) {
			t.Errorf("rows counter for node %s = %d, %v; want %d", key, got, ok, want)
		}
	}
	if v, ok := snap.CounterValue(`engine_runs_total{mode="pipelined"}`); !ok || v != 1 {
		t.Fatalf("engine_runs_total{mode=pipelined} = %d, %v; want 1", v, ok)
	}
}
