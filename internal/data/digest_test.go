package data

import (
	"testing"
	"time"
)

func digestRows() Rows {
	return Rows{
		{NewInt(1), NewString("alpha"), NewFloat(10.5)},
		{NewInt(2), NewString("beta"), Null},
		{NewInt(3), NewString(""), NewDate(2004, time.March, 15)},
	}
}

func TestDigestDeterministic(t *testing.T) {
	a, b := digestRows(), digestRows()
	if a.Digest() != b.Digest() {
		t.Fatalf("equal rows digest differently: %x vs %x", a.Digest(), b.Digest())
	}
}

func TestDigestOrderSensitive(t *testing.T) {
	a := digestRows()
	b := digestRows()
	b[0], b[1] = b[1], b[0]
	if a.Digest() == b.Digest() {
		t.Fatal("row order did not change the digest")
	}
}

func TestDigestTypeSensitive(t *testing.T) {
	cases := []struct{ a, b Value }{
		{NewInt(7), NewFloat(7)},
		{NewInt(7), NewString("7")},
		{NewString("NULL"), Null},
		{NewBool(true), NewInt(1)},
		{NewDateFromDays(1), NewInt(1)},
	}
	for _, c := range cases {
		ra := Rows{{c.a}}
		rb := Rows{{c.b}}
		if ra.Digest() == rb.Digest() {
			t.Errorf("%s and %s digest equal", c.a, c.b)
		}
	}
}

func TestDigestBoundaryShifts(t *testing.T) {
	// Value boundaries must matter: ("ab","c") vs ("a","bc"), and a
	// trailing empty string vs nothing.
	a := Rows{{NewString("ab"), NewString("c")}}
	b := Rows{{NewString("a"), NewString("bc")}}
	if a.Digest() == b.Digest() {
		t.Fatal("string boundary shift digests equal")
	}
	c := Rows{{NewString("x")}}
	d := Rows{{NewString("x"), NewString("")}}
	if c.Digest() == d.Digest() {
		t.Fatal("trailing empty value digests equal")
	}
	// Record boundaries must matter too: one two-value record vs two
	// one-value records.
	e := Rows{{NewInt(1), NewInt(2)}}
	f := Rows{{NewInt(1)}, {NewInt(2)}}
	if e.Digest() == f.Digest() {
		t.Fatal("record split digests equal")
	}
}

func TestDigestEmpty(t *testing.T) {
	if Rows(nil).Digest() != (Rows{}).Digest() {
		t.Fatal("nil and empty rows digest differently")
	}
	if Rows(nil).Digest() == digestRows().Digest() {
		t.Fatal("empty digest collides with data digest")
	}
}

func TestRecordsetDigest(t *testing.T) {
	schema := Schema{"KEY", "NAME", "V1"}
	a := NewMemoryRecordset("A", schema).MustLoad(digestRows())
	b := NewMemoryRecordset("B", schema).MustLoad(digestRows())
	da, err := RecordsetDigest(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := RecordsetDigest(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatal("same schema and contents, different digest")
	}
	c := NewMemoryRecordset("C", Schema{"KEY", "NAME", "V2"}).MustLoad(digestRows())
	dc, err := RecordsetDigest(c)
	if err != nil {
		t.Fatal(err)
	}
	if dc == da {
		t.Fatal("schema change did not change the digest")
	}
}
