package data

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestMemoryRecordsetBasics(t *testing.T) {
	rs := NewMemoryRecordset("T", Schema{"A", "B"})
	if rs.Name() != "T" {
		t.Errorf("Name = %q", rs.Name())
	}
	if n, _ := rs.Count(); n != 0 {
		t.Errorf("empty Count = %d", n)
	}
	rows := Rows{
		{NewInt(1), NewString("x")},
		{NewInt(2), Null},
	}
	if err := rs.Load(rows); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualMultiset(rows) {
		t.Errorf("Scan = %v", got)
	}
	if err := rs.Truncate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := rs.Count(); n != 0 {
		t.Errorf("Count after truncate = %d", n)
	}
}

func TestMemoryRecordsetArityCheck(t *testing.T) {
	rs := NewMemoryRecordset("T", Schema{"A", "B"})
	if err := rs.Load(Rows{{NewInt(1)}}); err == nil {
		t.Error("loading a 1-value record into a 2-attribute schema should fail")
	}
}

func TestMemoryRecordsetSchemaIsolated(t *testing.T) {
	schema := Schema{"A"}
	rs := NewMemoryRecordset("T", schema)
	schema[0] = "MUTATED"
	if rs.Schema()[0] != "A" {
		t.Error("recordset shares caller's schema storage")
	}
	got := rs.Schema()
	got[0] = "ALSO-MUTATED"
	if rs.Schema()[0] != "A" {
		t.Error("Schema() exposes internal storage")
	}
}

func TestMemoryRecordsetConcurrentLoad(t *testing.T) {
	rs := NewMemoryRecordset("T", Schema{"A"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := rs.Load(Rows{{NewInt(int64(i*100 + j))}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if n, _ := rs.Count(); n != 400 {
		t.Errorf("Count = %d, want 400", n)
	}
}

func TestFileRecordsetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "parts.csv")
	schema := Schema{"PKEY", "COST", "NOTE"}
	rs, err := NewFileRecordset("PARTS", schema, path)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows{
		{NewInt(1), NewFloat(9.5), NewString("ok")},
		{NewInt(2), Null, NewString("missing cost")},
		{NewInt(3), NewFloat(120), NewString("")},
	}
	if err := rs.Load(rows); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Scan returned %d rows", len(got))
	}
	if !got[1][1].IsNull() {
		t.Errorf("NULL did not round trip: %v", got[1][1])
	}
	if got[0][1].Float() != 9.5 {
		t.Errorf("float did not round trip: %v", got[0][1])
	}

	// Reopen against the same file: header must match.
	rs2, err := NewFileRecordset("PARTS", schema, path)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := rs2.Count(); n != 3 {
		t.Errorf("reopened Count = %d", n)
	}

	// Mismatched schema must be rejected.
	if _, err := NewFileRecordset("PARTS", Schema{"X"}, path); err == nil {
		t.Error("reopening with a different schema should fail")
	}
}

func TestFileRecordsetTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	rs, err := NewFileRecordset("T", Schema{"A"}, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Load(Rows{{NewInt(1)}, {NewInt(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Truncate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := rs.Count(); n != 0 {
		t.Errorf("Count after truncate = %d", n)
	}
	// The header must survive truncation.
	rows, err := rs.Scan()
	if err != nil || rows != nil {
		t.Errorf("Scan after truncate = %v, %v", rows, err)
	}
}

func TestFileRecordsetEmptyScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "e.csv")
	rs, err := NewFileRecordset("E", Schema{"A", "B"}, path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rs.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("empty file Scan = %v", rows)
	}
}
