package data

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is an ordered list of reference attribute names describing the
// layout of a Record. Per the paper's naming principle (§3.1), attribute
// names in a schema are *reference* names: synonyms denote the same
// real-world entity and distinct names denote distinct entities.
type Schema []string

// Index returns the position of attribute name in the schema, or -1.
func (s Schema) Index(name string) int {
	for i, a := range s {
		if a == name {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the attribute.
func (s Schema) Has(name string) bool { return s.Index(name) >= 0 }

// HasAll reports whether every attribute of sub appears in s.
func (s Schema) HasAll(sub Schema) bool {
	for _, a := range sub {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// Equal reports whether two schemas have the same attributes in the same
// order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// SameSet reports whether two schemas contain the same attributes,
// regardless of order.
func (s Schema) SameSet(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	return s.HasAll(o) && o.HasAll(s)
}

// Clone returns an independent copy of the schema.
func (s Schema) Clone() Schema {
	if s == nil {
		return nil
	}
	c := make(Schema, len(s))
	copy(c, s)
	return c
}

// Minus returns the attributes of s that do not appear in o, preserving
// order.
func (s Schema) Minus(o Schema) Schema {
	var out Schema
	for _, a := range s {
		if !o.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Union returns s followed by the attributes of o not already present.
func (s Schema) Union(o Schema) Schema {
	out := s.Clone()
	for _, a := range o {
		if !out.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// Intersect returns the attributes of s that also appear in o, in s's order.
func (s Schema) Intersect(o Schema) Schema {
	var out Schema
	for _, a := range s {
		if o.Has(a) {
			out = append(out, a)
		}
	}
	return out
}

// String renders the schema as a comma-separated attribute list.
func (s Schema) String() string { return strings.Join(s, ",") }

// Record is one row of data laid out according to some Schema. A Record and
// its Schema travel separately: activities know their schemas statically,
// so rows carry no per-row metadata.
type Record []Value

// Clone returns an independent copy of the record.
func (r Record) Clone() Record {
	c := make(Record, len(r))
	copy(c, r)
	return c
}

// Key returns a canonical string key identifying the record's contents;
// records with Equal values share a key. Used for multiset comparison and
// duplicate detection.
func (r Record) Key() string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// String renders the record for diagnostics.
func (r Record) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Project builds a new record holding, for each attribute of target, the
// value of the equally named attribute under src. Attributes missing from
// src become NULL.
func (r Record) Project(src, target Schema) Record {
	out := make(Record, len(target))
	for i, a := range target {
		if j := src.Index(a); j >= 0 && j < len(r) {
			out[i] = r[j]
		} else {
			out[i] = Null
		}
	}
	return out
}

// Rows is a slice of records with multiset-comparison helpers.
type Rows []Record

// Clone deep-copies the row set.
func (rs Rows) Clone() Rows {
	out := make(Rows, len(rs))
	for i, r := range rs {
		out[i] = r.Clone()
	}
	return out
}

// KeyCounts returns the multiset of record keys.
func (rs Rows) KeyCounts() map[string]int {
	m := make(map[string]int, len(rs))
	for _, r := range rs {
		m[r.Key()]++
	}
	return m
}

// EqualMultiset reports whether two row sets contain the same records with
// the same multiplicities, regardless of order. This is the paper's
// empirical notion of equivalent workflows: "based on the same input,
// produce the same output".
func (rs Rows) EqualMultiset(o Rows) bool {
	if len(rs) != len(o) {
		return false
	}
	a := rs.KeyCounts()
	for _, r := range o {
		k := r.Key()
		a[k]--
		if a[k] == 0 {
			delete(a, k)
		}
	}
	return len(a) == 0
}

// SplitRoundRobin deals the rows into n partitions: row i goes to
// partition i mod n. Each partition preserves the relative order of its
// rows, so interleaving the partitions back (InterleaveRoundRobin)
// reproduces the original slice. Records are shared, not copied. n < 1 is
// treated as 1.
func (rs Rows) SplitRoundRobin(n int) []Rows {
	if n < 1 {
		n = 1
	}
	parts := make([]Rows, n)
	if len(rs) == 0 {
		return parts
	}
	per := len(rs)/n + 1
	for p := range parts {
		parts[p] = make(Rows, 0, per)
	}
	for i, r := range rs {
		parts[i%n] = append(parts[i%n], r)
	}
	return parts
}

// InterleaveRoundRobin is the inverse of SplitRoundRobin: it reassembles
// partitions produced by a round-robin deal into the original row order.
// It must only be used on partitions that still hold a round-robin layout
// (no rows dropped); partitions that filtered rows need an order tag to
// merge deterministically.
func InterleaveRoundRobin(parts []Rows) Rows {
	n := len(parts)
	if n == 0 {
		return nil
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make(Rows, 0, total)
	for i := 0; ; i++ {
		advanced := false
		for p := 0; p < n; p++ {
			if i < len(parts[p]) {
				out = append(out, parts[p][i])
				advanced = true
			}
		}
		if !advanced {
			break
		}
	}
	return out
}

// DiffMultiset returns human-readable descriptions of records whose
// multiplicities differ between rs and o, capped at limit entries.
// It returns nil when the multisets are equal.
func (rs Rows) DiffMultiset(o Rows, limit int) []string {
	a := rs.KeyCounts()
	b := o.KeyCounts()
	var diffs []string
	keys := make([]string, 0, len(a)+len(b))
	seen := map[string]bool{}
	for k := range a {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range b {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a[k] != b[k] {
			diffs = append(diffs, fmt.Sprintf("key %q: left ×%d, right ×%d", k, a[k], b[k]))
			if len(diffs) >= limit {
				break
			}
		}
	}
	return diffs
}
