package data

import (
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := Schema{"A", "B", "C"}
	if s.Index("B") != 1 {
		t.Errorf("Index(B) = %d", s.Index("B"))
	}
	if s.Index("Z") != -1 {
		t.Errorf("Index(Z) = %d", s.Index("Z"))
	}
	if !s.Has("A") || s.Has("Z") {
		t.Error("Has wrong")
	}
	if !s.HasAll(Schema{"A", "C"}) {
		t.Error("HasAll(A,C) = false")
	}
	if s.HasAll(Schema{"A", "Z"}) {
		t.Error("HasAll(A,Z) = true")
	}
	if !s.HasAll(nil) {
		t.Error("HasAll(nil) = false; empty set is a subset of everything")
	}
}

func TestSchemaEqualAndSameSet(t *testing.T) {
	a := Schema{"A", "B"}
	b := Schema{"B", "A"}
	if a.Equal(b) {
		t.Error("order-sensitive Equal should fail")
	}
	if !a.SameSet(b) {
		t.Error("SameSet should ignore order")
	}
	if a.SameSet(Schema{"A", "B", "C"}) {
		t.Error("SameSet with different sizes")
	}
	// SameSet compares as sets of names; duplicate attribute names do not
	// occur in well-formed schemas.
	if !a.SameSet(a) {
		t.Error("SameSet self")
	}
}

func TestSchemaSetOps(t *testing.T) {
	s := Schema{"A", "B", "C", "D"}
	if got := s.Minus(Schema{"B", "D"}); !got.Equal((Schema{"A", "C"})) {
		t.Errorf("Minus = %v", got)
	}
	if got := s.Intersect(Schema{"D", "B", "Z"}); !got.Equal((Schema{"B", "D"})) {
		t.Errorf("Intersect = %v (order should follow receiver)", got)
	}
	if got := (Schema{"A"}).Union(Schema{"B", "A", "C"}); !got.Equal((Schema{"A", "B", "C"})) {
		t.Errorf("Union = %v", got)
	}
}

func TestSchemaCloneIndependence(t *testing.T) {
	s := Schema{"A", "B"}
	c := s.Clone()
	c[0] = "X"
	if s[0] != "A" {
		t.Error("Clone shares storage")
	}
	if Schema(nil).Clone() != nil {
		t.Error("nil Clone should stay nil")
	}
}

func TestRecordProject(t *testing.T) {
	src := Schema{"A", "B", "C"}
	rec := Record{NewInt(1), NewInt(2), NewInt(3)}
	got := rec.Project(src, Schema{"C", "A"})
	if len(got) != 2 || !got[0].Equal(NewInt(3)) || !got[1].Equal(NewInt(1)) {
		t.Errorf("Project = %v", got)
	}
	// Missing attributes project to NULL.
	got = rec.Project(src, Schema{"Z"})
	if !got[0].IsNull() {
		t.Errorf("missing attribute should be NULL, got %v", got[0])
	}
}

func TestRecordKey(t *testing.T) {
	a := Record{NewInt(1), NewString("x")}
	b := Record{NewInt(1), NewString("x")}
	c := Record{NewInt(1), NewString("y")}
	if a.Key() != b.Key() {
		t.Error("equal records should share keys")
	}
	if a.Key() == c.Key() {
		t.Error("different records should not share keys")
	}
	// Separator safety: ("ab","c") must differ from ("a","bc").
	d := Record{NewString("ab"), NewString("c")}
	e := Record{NewString("a"), NewString("bc")}
	if d.Key() == e.Key() {
		t.Error("record key is ambiguous across value boundaries")
	}
}

func TestRowsEqualMultiset(t *testing.T) {
	r1 := Record{NewInt(1)}
	r2 := Record{NewInt(2)}
	a := Rows{r1, r2, r1}
	b := Rows{r2, r1, r1}
	if !a.EqualMultiset(b) {
		t.Error("order should not matter")
	}
	if a.EqualMultiset(Rows{r1, r2}) {
		t.Error("different sizes should differ")
	}
	if a.EqualMultiset(Rows{r1, r2, r2}) {
		t.Error("different multiplicities should differ")
	}
	if !(Rows{}).EqualMultiset(Rows{}) {
		t.Error("empty multisets should be equal")
	}
}

func TestRowsEqualMultisetProperty(t *testing.T) {
	f := func(vals []int64, seed uint8) bool {
		rows := make(Rows, len(vals))
		for i, v := range vals {
			rows[i] = Record{NewInt(v)}
		}
		// Rotate as a cheap permutation.
		k := 0
		if len(rows) > 0 {
			k = int(seed) % len(rows)
		}
		perm := append(append(Rows{}, rows[k:]...), rows[:k]...)
		return rows.EqualMultiset(perm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowsDiffMultiset(t *testing.T) {
	a := Rows{Record{NewInt(1)}, Record{NewInt(2)}}
	b := Rows{Record{NewInt(1)}, Record{NewInt(3)}}
	diffs := a.DiffMultiset(b, 10)
	if len(diffs) != 2 {
		t.Errorf("expected 2 diffs, got %v", diffs)
	}
	if got := a.DiffMultiset(a, 10); got != nil {
		t.Errorf("self-diff should be nil, got %v", got)
	}
	// Limit respected.
	if got := a.DiffMultiset(b, 1); len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
}

func TestSortRows(t *testing.T) {
	rows := Rows{
		{NewInt(2), NewString("b")},
		{NewInt(1), NewString("z")},
		{NewInt(2), NewString("a")},
	}
	SortRows(rows, []int{0, 1})
	want := Rows{
		{NewInt(1), NewString("z")},
		{NewInt(2), NewString("a")},
		{NewInt(2), NewString("b")},
	}
	for i := range want {
		if rows[i].Key() != want[i].Key() {
			t.Fatalf("row %d = %v, want %v", i, rows[i], want[i])
		}
	}
}

func TestSplitRoundRobin(t *testing.T) {
	rows := make(Rows, 11)
	for i := range rows {
		rows[i] = Record{NewInt(int64(i))}
	}
	for _, n := range []int{1, 2, 3, 11, 20} {
		parts := rows.SplitRoundRobin(n)
		if len(parts) != n {
			t.Fatalf("n=%d: got %d partitions", n, len(parts))
		}
		// Row i must sit in partition i mod n, in order.
		for p, part := range parts {
			for j, r := range part {
				if want := int64(p + j*n); r[0].Int() != want {
					t.Fatalf("n=%d partition %d slot %d = %v, want %d", n, p, j, r, want)
				}
			}
		}
		back := InterleaveRoundRobin(parts)
		if len(back) != len(rows) {
			t.Fatalf("n=%d: round trip lost rows: %d != %d", n, len(back), len(rows))
		}
		for i := range rows {
			if back[i].Key() != rows[i].Key() {
				t.Fatalf("n=%d: round trip reordered row %d", n, i)
			}
		}
	}
	// Degenerate counts clamp to one partition.
	if parts := rows.SplitRoundRobin(0); len(parts) != 1 || len(parts[0]) != len(rows) {
		t.Errorf("n=0 should clamp to a single full partition")
	}
	if parts := Rows(nil).SplitRoundRobin(4); len(parts) != 4 {
		t.Errorf("empty rows should still yield 4 empty partitions")
	}
	if got := InterleaveRoundRobin(nil); got != nil {
		t.Errorf("InterleaveRoundRobin(nil) = %v, want nil", got)
	}
}
