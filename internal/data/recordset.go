package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Recordset is any data store that provides a flat record schema (paper
// §2.1). Source recordsets are scanned; target recordsets are loaded.
type Recordset interface {
	// Name returns the recordset's unique name within a workflow.
	Name() string
	// Schema returns the flat record schema.
	Schema() Schema
	// Scan returns all records. Implementations return a fresh slice whose
	// records the caller may retain but must not mutate.
	Scan() (Rows, error)
	// Load appends records to the recordset.
	Load(rows Rows) error
	// Truncate removes all records.
	Truncate() error
	// Count returns the number of stored records.
	Count() (int, error)
}

// MemoryRecordset is an in-memory relational table. It is safe for
// concurrent use.
type MemoryRecordset struct {
	name   string
	schema Schema

	mu   sync.RWMutex
	rows Rows
}

// NewMemoryRecordset creates an empty in-memory table.
func NewMemoryRecordset(name string, schema Schema) *MemoryRecordset {
	return &MemoryRecordset{name: name, schema: schema.Clone()}
}

// Name implements Recordset.
func (m *MemoryRecordset) Name() string { return m.name }

// Schema implements Recordset.
func (m *MemoryRecordset) Schema() Schema { return m.schema.Clone() }

// Scan implements Recordset.
func (m *MemoryRecordset) Scan() (Rows, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(Rows, len(m.rows))
	copy(out, m.rows)
	return out, nil
}

// Load implements Recordset. Each record must match the schema's arity.
func (m *MemoryRecordset) Load(rows Rows) error {
	for i, r := range rows {
		if len(r) != len(m.schema) {
			return fmt.Errorf("recordset %s: record %d has %d values, schema has %d attributes",
				m.name, i, len(r), len(m.schema))
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = append(m.rows, rows...)
	return nil
}

// Truncate implements Recordset.
func (m *MemoryRecordset) Truncate() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = nil
	return nil
}

// Count implements Recordset.
func (m *MemoryRecordset) Count() (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows), nil
}

// MustLoad loads rows and panics on error; intended for tests and examples.
func (m *MemoryRecordset) MustLoad(rows Rows) *MemoryRecordset {
	if err := m.Load(rows); err != nil {
		panic(err)
	}
	return m
}

// FileRecordset is a CSV-backed record file with a header row. It fulfils
// the paper's second popular recordset kind (§2.1). All operations read or
// rewrite the file; it is not safe for concurrent use across processes.
type FileRecordset struct {
	name   string
	schema Schema
	path   string
}

// NewFileRecordset opens or creates a CSV record file at path. If the file
// exists, its header must match schema; if it does not exist, it is created
// with the header.
func NewFileRecordset(name string, schema Schema, path string) (*FileRecordset, error) {
	f := &FileRecordset{name: name, schema: schema.Clone(), path: path}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := f.writeAll(nil); err != nil {
			return nil, err
		}
		return f, nil
	}
	header, err := f.readHeader()
	if err != nil {
		return nil, err
	}
	if !Schema(header).Equal(schema) {
		return nil, fmt.Errorf("record file %s: header %v does not match schema %v", path, header, schema)
	}
	return f, nil
}

// Name implements Recordset.
func (f *FileRecordset) Name() string { return f.name }

// Schema implements Recordset.
func (f *FileRecordset) Schema() Schema { return f.schema.Clone() }

func (f *FileRecordset) readHeader() ([]string, error) {
	fh, err := os.Open(f.path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	r := csv.NewReader(fh)
	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("record file %s: reading header: %w", f.path, err)
	}
	return header, nil
}

// Scan implements Recordset.
func (f *FileRecordset) Scan() (Rows, error) {
	fh, err := os.Open(f.path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	r := csv.NewReader(fh)
	if _, err := r.Read(); err != nil { // header
		if err == io.EOF {
			return nil, nil
		}
		return nil, err
	}
	var rows Rows
	for {
		fields, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("record file %s: %w", f.path, err)
		}
		rec := make(Record, len(fields))
		for i, s := range fields {
			rec[i] = ParseValue(s)
		}
		rows = append(rows, rec)
	}
	return rows, nil
}

// Load implements Recordset by appending rows to the CSV file.
func (f *FileRecordset) Load(rows Rows) error {
	for i, r := range rows {
		if len(r) != len(f.schema) {
			return fmt.Errorf("record file %s: record %d has %d values, schema has %d attributes",
				f.name, i, len(r), len(f.schema))
		}
	}
	fh, err := os.OpenFile(f.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer fh.Close()
	w := csv.NewWriter(fh)
	for _, rec := range rows {
		if err := w.Write(recordFields(rec)); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// Truncate implements Recordset by rewriting the file with only the header.
func (f *FileRecordset) Truncate() error { return f.writeAll(nil) }

// Count implements Recordset.
func (f *FileRecordset) Count() (int, error) {
	rows, err := f.Scan()
	if err != nil {
		return 0, err
	}
	return len(rows), nil
}

func (f *FileRecordset) writeAll(rows Rows) error {
	fh, err := os.Create(f.path)
	if err != nil {
		return err
	}
	defer fh.Close()
	w := csv.NewWriter(fh)
	if err := w.Write(f.schema); err != nil {
		return err
	}
	for _, rec := range rows {
		if err := w.Write(recordFields(rec)); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func recordFields(rec Record) []string {
	fields := make([]string, len(rec))
	for i, v := range rec {
		if v.IsNull() {
			fields[i] = "NULL"
		} else {
			fields[i] = v.String()
		}
	}
	return fields
}

// SortRows sorts rows in place by the given attribute positions, using
// Value.Compare lexicographically. It is a stable sort so that equal keys
// preserve input order.
func SortRows(rows Rows, positions []int) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, p := range positions {
			if c := rows[i][p].Compare(rows[j][p]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}
