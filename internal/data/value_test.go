package data

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "NULL"},
		{NewInt(42), KindInt, "42"},
		{NewInt(-7), KindInt, "-7"},
		{NewFloat(3.5), KindFloat, "3.5"},
		{NewString("abc"), KindString, "abc"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
		{NewDate(2004, time.March, 1), KindDate, "2004-03-01"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: String = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	if NewInt(0).IsNull() {
		t.Error("NewInt(0).IsNull() = true")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
}

func TestValueCoercions(t *testing.T) {
	if got := NewInt(5).Float(); got != 5.0 {
		t.Errorf("NewInt(5).Float() = %v", got)
	}
	if got := NewFloat(5.9).Int(); got != 5 {
		t.Errorf("NewFloat(5.9).Int() = %v", got)
	}
	if got := NewBool(true).Int(); got != 1 {
		t.Errorf("NewBool(true).Int() = %v", got)
	}
	if NewInt(3).Bool() != true || NewInt(0).Bool() != false {
		t.Error("int Bool coercion wrong")
	}
	if Null.Bool() {
		t.Error("Null.Bool() = true")
	}
}

func TestValueEqualCrossKindNumeric(t *testing.T) {
	if !NewInt(5).Equal(NewFloat(5)) {
		t.Error("int 5 should equal float 5")
	}
	if NewInt(5).Equal(NewFloat(5.5)) {
		t.Error("int 5 should not equal float 5.5")
	}
	if NewInt(1).Equal(NewBool(true)) {
		t.Error("int 1 should not equal bool true")
	}
	if !Null.Equal(Null) {
		t.Error("NULL should equal NULL under multiset identity")
	}
	if Null.Equal(NewInt(0)) {
		t.Error("NULL should not equal 0")
	}
}

func TestValueEqualNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if !nan.Equal(nan) {
		t.Error("NaN should equal NaN under multiset identity")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{Null, NewInt(-100), -1},
		{NewInt(-100), Null, 1},
		{Null, Null, 0},
		{NewDate(2004, time.January, 1), NewDate(2004, time.February, 1), -1},
		{NewBool(false), NewBool(true), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return NewInt(a).Compare(NewInt(b)) == -NewInt(b).Compare(NewInt(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueKeyDistinguishes(t *testing.T) {
	distinct := []Value{
		Null, NewInt(0), NewInt(1), NewFloat(0.5), NewString(""),
		NewString("0"), NewBool(false), NewBool(true), NewDate(2004, time.May, 5),
	}
	seen := map[string]Value{}
	for _, v := range distinct {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("values %v and %v share key %q", prev, v, k)
		}
		seen[k] = v
	}
	// Numeric cross-kind equality shares keys by design.
	if NewInt(5).Key() != NewFloat(5).Key() {
		t.Error("int 5 and float 5 should share a key")
	}
}

func TestValueKeyEqualConsistency(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return (va.Key() == vb.Key()) == va.Equal(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"", Null},
		{"NULL", Null},
		{"null", Null},
		{"42", NewInt(42)},
		{"-3", NewInt(-3)},
		{"2.5", NewFloat(2.5)},
		{"true", NewBool(true)},
		{"false", NewBool(false)},
		{"2004-03-01", NewDate(2004, time.March, 1)},
		{"hello", NewString("hello")},
		{"01/02/2004", NewString("01/02/2004")},
	}
	for _, c := range cases {
		got := ParseValue(c.in)
		if !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("ParseValue(%q) = %v (%v), want %v (%v)", c.in, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		v := NewInt(n)
		return ParseValue(v.String()).Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateRoundTrip(t *testing.T) {
	v := NewDate(1999, time.December, 31)
	if got := v.Time().Format("2006-01-02"); got != "1999-12-31" {
		t.Errorf("date round trip = %q", got)
	}
	d := NewDateFromDays(v.Days())
	if !d.Equal(v) {
		t.Error("NewDateFromDays(Days()) != original")
	}
}
