package data

import "math"

// FNV-1a parameters. The digest below is the package's one canonical row
// hash: the shared-work cache key, the empirical equivalence oracle and the
// property suites all compare rows through it, so its definition is part of
// the bit-identity contract — change it and every content-addressed cache
// entry and recorded baseline is invalidated.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// digestState is an incremental FNV-1a fold over typed values.
type digestState uint64

func newDigest() digestState { return digestState(fnvOffset) }

func (d *digestState) byte(b byte) {
	*d = digestState((uint64(*d) ^ uint64(b)) * fnvPrime)
}

func (d *digestState) uint64(x uint64) {
	for i := 0; i < 8; i++ {
		d.byte(byte(x))
		x >>= 8
	}
}

func (d *digestState) str(s string) {
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
	d.byte(0xff) // terminator: ("ab","c") must differ from ("a","bc")
}

// value folds one typed value: the kind tag first, then the kind's
// canonical payload, so Int(7), Float(7) and String("7") all digest
// differently even though they render identically in CSV.
func (d *digestState) value(v Value) {
	d.byte(byte(v.kind))
	switch v.kind {
	case KindNull:
		// kind tag alone
	case KindFloat:
		d.uint64(math.Float64bits(v.f))
	case KindString:
		d.str(v.s)
	default: // Int, Bool, Date all carry their payload in i
		d.uint64(uint64(v.i))
	}
	d.byte(0xfe) // value separator
}

// Digest returns an order-sensitive FNV-1a digest of the rows: every typed
// value is folded in record order, with record separators, so two row
// slices digest equal exactly when they hold the same typed values in the
// same positions. An empty and a nil slice digest equal.
func (rows Rows) Digest() uint64 {
	d := newDigest()
	for _, rec := range rows {
		for _, v := range rec {
			d.value(v)
		}
		d.byte(0xfd) // record separator
	}
	return uint64(d)
}

// RecordsetDigest scans a recordset and returns the canonical digest of its
// schema and contents: the schema's attribute names in order, then the rows
// via Rows.Digest. It is the data half of the shared-work cache key — two
// recordsets with equal names, schemas and row-for-row equal typed contents
// are interchangeable as ETL sources.
func RecordsetDigest(rs Recordset) (uint64, error) {
	rows, err := rs.Scan()
	if err != nil {
		return 0, err
	}
	d := newDigest()
	for _, attr := range rs.Schema() {
		d.str(attr)
	}
	d.uint64(rows.Digest())
	return uint64(d), nil
}
