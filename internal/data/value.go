// Package data provides the record-level substrate of the ETL system:
// typed scalar values, records, record schemas and recordsets (in-memory
// tables and CSV-backed record files).
//
// The paper (§2.1) defines a recordset as "any data store that can provide a
// flat record schema"; the two concrete kinds implemented here are the two
// the paper names as most popular: relational tables (MemoryRecordset) and
// record files (FileRecordset).
package data

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the scalar types a Value can hold. The zero Kind is
// KindNull, so the zero Value is a typed SQL-style NULL.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	case KindDate:
		return "date"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding one scalar datum flowing through
// an ETL workflow. Values are immutable by convention: activities construct
// new Values rather than mutating ones they received.
//
// Dates are stored as days since the Unix epoch in the integer payload,
// which keeps Value free of pointers and cheap to copy.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewDate returns a date value for the given civil date.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, i: t.Unix() / 86400}
}

// NewDateFromDays returns a date value holding the given count of days since
// the Unix epoch.
func NewDateFromDays(days int64) Value { return Value{kind: KindDate, i: days} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It is valid only for KindInt values;
// for other kinds it returns a best-effort coercion (0 for non-numerics).
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt, KindBool, KindDate:
		return v.i
	case KindFloat:
		return int64(v.f)
	default:
		return 0
	}
}

// Float returns the value as a float64, coercing integers.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool, KindDate:
		return float64(v.i)
	default:
		return 0
	}
}

// Str returns the string payload for KindString values and a formatted
// rendering for every other kind.
func (v Value) Str() string {
	if v.kind == KindString {
		return v.s
	}
	return v.String()
}

// Bool returns the boolean payload; non-bool kinds report false except
// non-zero numerics, which report true.
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	default:
		return false
	}
}

// Days returns the date payload in days since the Unix epoch.
func (v Value) Days() int64 { return v.i }

// Time returns the date payload as a UTC time.Time at midnight.
func (v Value) Time() time.Time {
	return time.Unix(v.i*86400, 0).UTC()
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for display and for CSV serialization.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return "?"
	}
}

// Equal reports deep equality of two values. NULL equals only NULL
// (this is identity-based equality for grouping and set operations, not
// SQL ternary comparison; predicates handle NULL separately).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Allow int/float cross-kind numeric equality so that, e.g., an
		// aggregation producing floats compares equal to integer input.
		if v.IsNumeric() && o.IsNumeric() {
			return v.Float() == o.Float()
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindFloat:
		return v.f == o.f || (math.IsNaN(v.f) && math.IsNaN(o.f))
	case KindString:
		return v.s == o.s
	default:
		return v.i == o.i
	}
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// NULL sorts before every non-NULL value. Cross-kind numeric comparison
// coerces to float64; otherwise kinds are ordered by their Kind tag.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		switch {
		case v.kind < o.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, o.s)
	case KindBool, KindDate:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		default:
			return 0
		}
	default:
		return 0
	}
}

// Key returns a string usable as a map key that distinguishes values the
// way Equal does. Numeric values of equal magnitude share a key.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt, KindFloat:
		return "n:" + strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case KindString:
		return "s:" + v.s
	case KindBool:
		return "b:" + strconv.FormatInt(v.i, 10)
	case KindDate:
		return "d:" + strconv.FormatInt(v.i, 10)
	default:
		return "?"
	}
}

// ParseValue parses s into the most specific kind it matches: empty string
// and "NULL" parse as NULL, then int, float, bool, ISO date, else string.
func ParseValue(s string) Value {
	switch s {
	case "", "NULL", "null":
		return Null
	case "true":
		return NewBool(true)
	case "false":
		return NewBool(false)
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return NewFloat(f)
	}
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return NewDateFromDays(t.Unix() / 86400)
	}
	return NewString(s)
}
