// Package lint is a thin compatibility facade over internal/analysis,
// which absorbed the design-time workflow checks that used to live here
// (dead attributes, unguarded surrogate keys, selectivity ranges,
// redundant activities, late projections) and extended them with schema
// dataflow passes (unresolved or shadowed reference names, dead
// generations, auxiliary-schema coverage gaps). Check runs the full
// workflow pass suite; new code should use analysis.CheckWorkflow
// directly, which also carries suggested fixes.
package lint

import (
	"fmt"

	"etlopt/internal/analysis"
	"etlopt/internal/workflow"
)

// Severity grades a finding.
type Severity uint8

// Severities.
const (
	// Warning marks likely mistakes (wrong results or failures at run
	// time).
	Warning Severity = Severity(analysis.Warning)
	// Advice marks inefficiencies the optimizer cannot fix by itself.
	Advice Severity = Severity(analysis.Advice)
)

// String returns the severity's name.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "advice"
}

// Finding is one lint result.
type Finding struct {
	Severity Severity
	// Node anchors the finding; -1 for workflow-level findings.
	Node workflow.NodeID
	// Check names the rule, e.g. "dead-attribute".
	Check   string
	Message string
}

// String renders the finding.
func (f Finding) String() string {
	if f.Node >= 0 {
		return fmt.Sprintf("%s [%s] node %d: %s", f.Severity, f.Check, f.Node, f.Message)
	}
	return fmt.Sprintf("%s [%s]: %s", f.Severity, f.Check, f.Message)
}

// Check runs every workflow analysis pass and returns the findings in a
// fully deterministic order: by check name, then graph location, then
// message. The graph must be structurally valid; schemata are
// regenerated on a clone, so callers need not have done so.
func Check(g *workflow.Graph) ([]Finding, error) {
	fs, err := analysis.CheckWorkflow(g)
	if err != nil {
		return nil, err
	}
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		out = append(out, Finding{
			Severity: Severity(f.Severity),
			Node:     f.Node,
			Check:    f.Check,
			Message:  f.Message,
		})
	}
	return out, nil
}
