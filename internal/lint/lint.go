// Package lint provides design-time advisory checks for ETL workflows —
// the designer-support role the paper situates in its ARKTOS-II context
// ([18]): beyond hard validity (workflow.Validate / CheckWellFormed),
// these checks flag constructions that are legal but probably wrong or
// wasteful, such as attributes carried through the whole flow only to be
// dropped, surrogate-key lookups fed with possibly-NULL keys, or
// selectivity estimates the cost model cannot price sensibly.
package lint

import (
	"fmt"
	"sort"

	"etlopt/internal/data"
	"etlopt/internal/workflow"
)

// Severity grades a finding.
type Severity uint8

// Severities.
const (
	// Warning marks likely mistakes (wrong results or failures at run
	// time).
	Warning Severity = iota
	// Advice marks inefficiencies the optimizer cannot fix by itself.
	Advice
)

// String returns the severity's name.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "advice"
}

// Finding is one lint result.
type Finding struct {
	Severity Severity
	// Node anchors the finding; -1 for workflow-level findings.
	Node workflow.NodeID
	// Check names the rule, e.g. "dead-attribute".
	Check   string
	Message string
}

// String renders the finding.
func (f Finding) String() string {
	if f.Node >= 0 {
		return fmt.Sprintf("%s [%s] node %d: %s", f.Severity, f.Check, f.Node, f.Message)
	}
	return fmt.Sprintf("%s [%s]: %s", f.Severity, f.Check, f.Message)
}

// Check runs every lint rule and returns the findings, workflow-level
// first, then by node ID. The graph must have regenerated schemata.
func Check(g *workflow.Graph) ([]Finding, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	var out []Finding
	out = append(out, deadAttributes(g)...)
	out = append(out, unprotectedLookups(g)...)
	out = append(out, selectivityRanges(g)...)
	out = append(out, redundantActivities(g)...)
	out = append(out, lateProjections(g)...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Check < out[j].Check
	})
	return out, nil
}

// deadAttributes reports source attributes that no activity reads and no
// target stores — rows carry them through the whole flow for nothing.
func deadAttributes(g *workflow.Graph) []Finding {
	used := map[string]bool{}
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		for _, attr := range a.Fun {
			used[attr] = true
		}
		for _, attr := range a.RequiredIn {
			used[attr] = true
		}
	}
	for _, id := range g.Targets() {
		for _, attr := range g.Node(id).RS.Schema {
			used[attr] = true
		}
	}
	var out []Finding
	for _, id := range g.Sources() {
		n := g.Node(id)
		for _, attr := range n.RS.Schema {
			if !used[attr] {
				out = append(out, Finding{
					Severity: Advice,
					Node:     id,
					Check:    "dead-attribute",
					Message: fmt.Sprintf("source %s attribute %q is never read and never stored; project it out at the source",
						n.RS.Name, attr),
				})
			}
		}
	}
	return out
}

// unprotectedLookups reports surrogate-key activities whose production key
// is not guarded by an upstream not-null check: a NULL key cannot resolve
// and fails the load at run time.
func unprotectedLookups(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op != workflow.OpSurrogateKey {
			continue
		}
		if !guardedUpstream(g, id, a.Sem.KeyAttr) {
			out = append(out, Finding{
				Severity: Warning,
				Node:     id,
				Check:    "unguarded-surrogate-key",
				Message: fmt.Sprintf("no upstream not-null check on %q; a NULL production key fails the lookup at run time",
					a.Sem.KeyAttr),
			})
		}
	}
	return out
}

// guardedUpstream reports whether every path from the sources to node id
// passes a not-null check covering attr.
func guardedUpstream(g *workflow.Graph, id workflow.NodeID, attr string) bool {
	preds := g.Providers(id)
	if len(preds) == 0 {
		return false // reached a source without a guard
	}
	for _, p := range preds {
		n := g.Node(p)
		if n.Kind == workflow.KindActivity {
			a := n.Act
			if a.Sem.Op == workflow.OpNotNull && data.Schema(a.Sem.Attrs).Has(attr) {
				continue // this path is guarded
			}
			if covered, renamed := guardsViaGeneration(a, attr); covered {
				_ = renamed
				continue
			}
		}
		if !guardedUpstream(g, p, attr) {
			return false
		}
	}
	return true
}

// guardsViaGeneration treats an activity that *generates* attr as a guard
// boundary: the attribute did not exist before it, so the guard question
// applies to the generator's semantics, which are the designer's
// responsibility (e.g. an aggregation's grouping key is never NULL-checked
// this way).
func guardsViaGeneration(a *workflow.Activity, attr string) (bool, bool) {
	if a.Gen.Has(attr) {
		return true, true
	}
	return false, false
}

// selectivityRanges reports selectivity estimates outside what the cost
// model can price: unary activities want (0, 1]; joins want a positive
// match fraction well below 1.
func selectivityRanges(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		switch {
		case a.Sem.Op == workflow.OpUnion:
			// No selectivity.
		case a.Sem.Op == workflow.OpJoin:
			if a.Sel <= 0 || a.Sel > 1 {
				out = append(out, Finding{
					Severity: Warning, Node: id, Check: "selectivity-range",
					Message: fmt.Sprintf("join selectivity %g outside (0,1]", a.Sel),
				})
			}
		default:
			if a.Sel <= 0 || a.Sel > 1 {
				out = append(out, Finding{
					Severity: Warning, Node: id, Check: "selectivity-range",
					Message: fmt.Sprintf("selectivity %g outside (0,1]", a.Sel),
				})
			}
		}
	}
	return out
}

// redundantActivities reports directly repeated activities with identical
// semantics — the second is a no-op for filters and checks, and a likely
// copy-paste error for everything else.
func redundantActivities(g *workflow.Graph) []Finding {
	var out []Finding
	for _, id := range g.Activities() {
		n := g.Node(id)
		if n.Act.IsBinary() {
			continue
		}
		for _, c := range g.Consumers(id) {
			cn := g.Node(c)
			if cn.Kind == workflow.KindActivity && !cn.Act.IsBinary() &&
				cn.Act.SameOperation(n.Act) {
				out = append(out, Finding{
					Severity: Advice, Node: c, Check: "redundant-activity",
					Message: fmt.Sprintf("repeats its provider's operation %s", n.Act.Sem),
				})
			}
		}
	}
	return out
}

// lateProjections reports projections whose dropped attributes were last
// read far upstream: every row between the last reader and the projection
// carried the attribute for nothing. (The optimizer can often push the
// projection itself; this check fires even when swap conditions block it.)
func lateProjections(g *workflow.Graph) []Finding {
	order, err := g.TopoSort()
	if err != nil {
		return nil
	}
	pos := map[workflow.NodeID]int{}
	for i, id := range order {
		pos[id] = i
	}
	var out []Finding
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op != workflow.OpProject {
			continue
		}
		for _, attr := range a.Sem.Attrs {
			lastUse := -1
			for _, other := range g.Activities() {
				if other == id {
					continue
				}
				oa := g.Node(other).Act
				if oa.Fun.Has(attr) && pos[other] < pos[id] && pos[other] > lastUse {
					lastUse = pos[other]
				}
			}
			// "Far" = more than two nodes of slack between the last reader
			// (or the source) and the projection.
			if pos[id]-lastUse > 3 {
				out = append(out, Finding{
					Severity: Advice, Node: id, Check: "late-projection",
					Message: fmt.Sprintf("attribute %q is dead long before this projection; consider dropping it earlier", attr),
				})
				break
			}
		}
	}
	return out
}
