package lint

import (
	"strings"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// findings filters by check name.
func findings(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func mustCheck(t *testing.T, g *workflow.Graph) []Finding {
	t.Helper()
	fs, err := Check(g)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCleanWorkflowFig1(t *testing.T) {
	g := templates.Fig1Workflow()
	fs := mustCheck(t, g)
	for _, f := range fs {
		if f.Severity == Warning {
			t.Errorf("Fig. 1 should have no warnings, got: %s", f)
		}
	}
}

func TestDeadAttribute(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"K", "V", "BALLAST"}, Rows: 100, IsSource: true,
	})
	f := g.AddActivity(templates.Threshold("V", 1, 0.5))
	// The projection drops BALLAST right before the target, so the target
	// never stores it and nothing reads it.
	p := g.AddActivity(templates.ProjectOut("BALLAST"))
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K", "V"}, IsTarget: true})
	g.MustAddEdge(src, f)
	g.MustAddEdge(f, p)
	g.MustAddEdge(p, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	// BALLAST appears in the projection's Fun, so it is "read" by the
	// projection itself — dead-attribute is for attributes NOTHING touches.
	// Build a variant whose target simply ignores the attribute.
	g2 := workflow.NewGraph()
	src2 := g2.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"K", "V", "BALLAST"}, Rows: 100, IsSource: true,
	})
	f2 := g2.AddActivity(templates.Threshold("V", 1, 0.5))
	tgt2 := g2.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K", "V", "BALLAST"}, IsTarget: true})
	g2.MustAddEdge(src2, f2)
	g2.MustAddEdge(f2, tgt2)
	if err := g2.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	_ = tgt
	fs := mustCheck(t, g2)
	if len(findings(fs, "dead-attribute")) != 0 {
		t.Error("BALLAST is stored by the target; not dead")
	}

	// Now a target that drops it via schema: truly dead.
	g3 := workflow.NewGraph()
	src3 := g3.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"K", "V", "BALLAST"}, Rows: 100, IsSource: true,
	})
	p3 := g3.AddActivity(templates.ProjectOut("BALLAST"))
	tgt3 := g3.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K", "V"}, IsTarget: true})
	g3.MustAddEdge(src3, p3)
	g3.MustAddEdge(p3, tgt3)
	if err := g3.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	// The projection reads BALLAST (its Fun), so still not "dead" — the
	// check targets attributes with no mention at all. Confirm none fire.
	fs = mustCheck(t, g3)
	if len(findings(fs, "dead-attribute")) != 0 {
		t.Error("projected attributes are referenced, not dead")
	}

	// An attribute absent everywhere: dead.
	g4 := workflow.NewGraph()
	src4 := g4.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"K", "V", "GHOST"}, Rows: 100, IsSource: true,
	})
	f4 := g4.AddActivity(templates.Threshold("V", 1, 0.5))
	tgt4 := g4.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K", "V", "GHOST"}, IsTarget: true})
	g4.MustAddEdge(src4, f4)
	g4.MustAddEdge(f4, tgt4)
	if err := g4.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	// GHOST is stored by the target here, so not dead either. The simplest
	// true positive: target without GHOST and no reader — but then the
	// workflow is ill-formed (union/target mismatch)... unless an
	// aggregation drops it implicitly.
	agg := templates.Aggregate([]string{"K"}, workflow.AggSum, "V", "TOT", 0.5)
	g5 := workflow.NewGraph()
	src5 := g5.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"K", "V", "GHOST"}, Rows: 100, IsSource: true,
	})
	a5 := g5.AddActivity(agg)
	tgt5 := g5.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K", "TOT"}, IsTarget: true})
	g5.MustAddEdge(src5, a5)
	g5.MustAddEdge(a5, tgt5)
	if err := g5.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	fs = mustCheck(t, g5)
	hits := findings(fs, "dead-attribute")
	if len(hits) != 1 || !strings.Contains(hits[0].Message, "GHOST") {
		t.Errorf("dead-attribute findings = %v, want exactly GHOST", hits)
	}
}

func TestUnguardedSurrogateKey(t *testing.T) {
	mk := func(withGuard bool) *workflow.Graph {
		g := workflow.NewGraph()
		src := g.AddRecordset(&workflow.RecordsetRef{
			Name: "S", Schema: data.Schema{"K", "V"}, Rows: 100, IsSource: true,
		})
		cur := src
		if withGuard {
			nn := g.AddActivity(templates.NotNull(0.95, "K"))
			g.MustAddEdge(cur, nn)
			cur = nn
		}
		sk := g.AddActivity(templates.SurrogateKey("K", "SK", "L"))
		tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"V", "SK"}, IsTarget: true})
		g.MustAddEdge(cur, sk)
		g.MustAddEdge(sk, tgt)
		if err := g.RegenerateSchemata(); err != nil {
			t.Fatal(err)
		}
		return g
	}
	fs := mustCheck(t, mk(false))
	if len(findings(fs, "unguarded-surrogate-key")) != 1 {
		t.Errorf("unguarded SK not reported: %v", fs)
	}
	fs = mustCheck(t, mk(true))
	if len(findings(fs, "unguarded-surrogate-key")) != 0 {
		t.Errorf("guarded SK wrongly reported: %v", fs)
	}
}

func TestSelectivityRange(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"V"}, Rows: 10, IsSource: true})
	bad := templates.Threshold("V", 1, 0.5)
	bad.Sel = 1.7
	id := g.AddActivity(bad)
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"V"}, IsTarget: true})
	g.MustAddEdge(src, id)
	g.MustAddEdge(id, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	fs := mustCheck(t, g)
	hits := findings(fs, "selectivity-range")
	if len(hits) != 1 || hits[0].Severity != Warning {
		t.Errorf("selectivity findings = %v", hits)
	}
}

func TestRedundantActivity(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"V"}, Rows: 10, IsSource: true})
	f1 := g.AddActivity(templates.Threshold("V", 5, 0.5))
	f2 := g.AddActivity(templates.Threshold("V", 5, 0.5)) // exact repeat
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"V"}, IsTarget: true})
	g.MustAddEdge(src, f1)
	g.MustAddEdge(f1, f2)
	g.MustAddEdge(f2, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	fs := mustCheck(t, g)
	if len(findings(fs, "redundant-activity")) != 1 {
		t.Errorf("redundant repeat not reported: %v", fs)
	}
}

func TestLateProjection(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"K", "V", "PAYLOAD"}, Rows: 10, IsSource: true,
	})
	cur := src
	// A long chain that never touches PAYLOAD...
	for i := 0; i < 4; i++ {
		id := g.AddActivity(templates.Threshold("V", float64(i), 0.9))
		g.MustAddEdge(cur, id)
		cur = id
	}
	// ...then finally drops it.
	p := g.AddActivity(templates.ProjectOut("PAYLOAD"))
	g.MustAddEdge(cur, p)
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"K", "V"}, IsTarget: true})
	g.MustAddEdge(p, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	fs := mustCheck(t, g)
	if len(findings(fs, "late-projection")) != 1 {
		t.Errorf("late projection not reported: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Severity: Warning, Node: 3, Check: "x", Message: "m"}
	if !strings.Contains(f.String(), "warning") || !strings.Contains(f.String(), "node 3") {
		t.Errorf("String = %q", f.String())
	}
}

// TestCheckOrderDeterministic: Check returns findings fully ordered by
// check name, then node, then message — and identically on every run.
func TestCheckOrderDeterministic(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{
		Name: "S", Schema: data.Schema{"K", "V", "B1", "B2"}, Rows: 10, IsSource: true,
	})
	// Several findings across several checks and nodes: two dead source
	// attributes, a doubled filter, and an unguarded surrogate key.
	f1 := g.AddActivity(templates.Threshold("V", 1, 0.5))
	f2 := g.AddActivity(templates.Threshold("V", 1, 0.5))
	sk := g.AddActivity(templates.SurrogateKey("K", "SK", "LOOK"))
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"V", "SK"}, IsTarget: true})
	g.MustAddEdge(src, f1)
	g.MustAddEdge(f1, f2)
	g.MustAddEdge(f2, sk)
	g.MustAddEdge(sk, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	first := mustCheck(t, g)
	if len(first) < 3 {
		t.Fatalf("expected several findings, got %v", first)
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Check > b.Check ||
			(a.Check == b.Check && a.Node > b.Node) ||
			(a.Check == b.Check && a.Node == b.Node && a.Message > b.Message) {
			t.Errorf("findings out of order at %d: %v then %v", i, a, b)
		}
	}
	for run := 0; run < 10; run++ {
		again := mustCheck(t, g)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d findings, first run had %d", run, len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("run %d: finding %d = %v, first run had %v", run, i, again[i], first[i])
			}
		}
	}
}
