// Package dsl implements a textual definition language for ETL workflows:
// a line-oriented format declaring recordsets, activities and flows, plus
// a small predicate expression language for selections. The format
// round-trips: Serialize(Parse(x)) parses back to an equivalent workflow,
// and the command-line tools read and write it.
package dsl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"etlopt/internal/algebra"
	"etlopt/internal/data"
)

// ParsePredicate parses a selection predicate such as
//
//	ECOST >= 100 and not(isnull(DATE)) or STATUS = 'ok'
//
// Grammar (standard precedence: or < and < not < comparison < additive <
// multiplicative):
//
//	expr    := orExpr
//	orExpr  := andExpr ('or' andExpr)*
//	andExpr := unary ('and' unary)*
//	unary   := 'not' unary | cmp
//	cmp     := sum (op sum)?          op ∈ {=, ==, <>, !=, <, <=, >, >=}
//	sum     := term (('+'|'-') term)*
//	term    := factor (('*'|'/') factor)*
//	factor  := number | 'string' | ident | ident '(' expr, ... ')' | '(' expr ')'
//	           | isnull '(' expr ')'
func ParsePredicate(src string) (algebra.Expr, error) {
	toks, err := lexPredicate(src)
	if err != nil {
		return nil, err
	}
	p := &predParser{toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("dsl: unexpected token %q after predicate", p.peek().text)
	}
	return e, nil
}

// token kinds for the predicate lexer.
type tokKind uint8

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokOp // comparison or arithmetic operator, parenthesis, comma
)

type tok struct {
	kind tokKind
	text string
}

func lexPredicate(src string) ([]tok, error) {
	var toks []tok
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("dsl: unterminated string literal at %d", i)
			}
			toks = append(toks, tok{tokString, src[i+1 : j]})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1])) && startsOperand(toks)):
			j := i + 1
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			// Exponent suffix (1e+06, 2.5E-3), as produced by the %g
			// rendering of float constants.
			if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < len(src) && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < len(src) && unicode.IsDigit(rune(src[k])) {
					j = k + 1
					for j < len(src) && unicode.IsDigit(rune(src[j])) {
						j++
					}
				}
			}
			toks = append(toks, tok{tokNumber, src[i:j]})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, tok{tokIdent, src[i:j]})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case ">=", "<=", "<>", "!=", "==":
				toks = append(toks, tok{tokOp, two})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',':
				toks = append(toks, tok{tokOp, string(c)})
				i++
			default:
				return nil, fmt.Errorf("dsl: unexpected character %q in predicate", c)
			}
		}
	}
	return toks, nil
}

// startsOperand reports whether the next token position expects an operand
// (so a '-' is a numeric sign rather than subtraction).
func startsOperand(toks []tok) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	return last.kind == tokOp && last.text != ")"
}

type predParser struct {
	toks []tok
	pos  int
}

func (p *predParser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *predParser) peek() tok {
	if p.atEnd() {
		return tok{tokOp, ""}
	}
	return p.toks[p.pos]
}

func (p *predParser) next() tok {
	t := p.peek()
	p.pos++
	return t
}

func (p *predParser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("dsl: expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *predParser) parseOr() (algebra.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = algebra.Logic{Op: algebra.Or, Left: left, Right: right}
	}
	return left, nil
}

func (p *predParser) parseAnd() (algebra.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokIdent && p.peek().text == "and" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = algebra.Logic{Op: algebra.And, Left: left, Right: right}
	}
	return left, nil
}

func (p *predParser) parseUnary() (algebra.Expr, error) {
	if p.peek().kind == tokIdent && p.peek().text == "not" {
		p.next()
		// Accept both not(x) and not x.
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return algebra.Not{Inner: inner}, nil
	}
	return p.parseCmp()
}

func (p *predParser) parseCmp() (algebra.Expr, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokOp {
		switch t.text {
		case "=", "==", "<>", "!=", "<", "<=", ">", ">=":
			p.next()
			op, err := algebra.ParseCmpOp(t.text)
			if err != nil {
				return nil, err
			}
			right, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return algebra.Cmp{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *predParser) parseSum() (algebra.Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		op := algebra.Add
		if t.text == "-" {
			op = algebra.Sub
		}
		left = algebra.Arith{Op: op, Left: left, Right: right}
	}
}

func (p *predParser) parseTerm() (algebra.Expr, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return left, nil
		}
		p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		op := algebra.Mul
		if t.text == "/" {
			op = algebra.Div
		}
		left = algebra.Arith{Op: op, Left: left, Right: right}
	}
}

func (p *predParser) parseFactor() (algebra.Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("dsl: bad number %q: %v", t.text, err)
			}
			return algebra.Const{Value: data.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dsl: bad number %q: %v", t.text, err)
		}
		return algebra.Const{Value: data.NewInt(i)}, nil
	case tokString:
		return algebra.Const{Value: data.NewString(t.text)}, nil
	case tokIdent:
		switch t.text {
		case "true":
			return algebra.Const{Value: data.NewBool(true)}, nil
		case "false":
			return algebra.Const{Value: data.NewBool(false)}, nil
		case "isnull":
			if err := p.expect("("); err != nil {
				return nil, err
			}
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return algebra.IsNull{Inner: inner}, nil
		}
		// Function call or attribute reference.
		if p.peek().kind == tokOp && p.peek().text == "(" {
			p.next()
			var args []algebra.Expr
			if !(p.peek().kind == tokOp && p.peek().text == ")") {
				for {
					arg, err := p.parseOr()
					if err != nil {
						return nil, err
					}
					args = append(args, arg)
					if p.peek().text == "," {
						p.next()
						continue
					}
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return algebra.Call{Fn: t.text, Args: args}, nil
		}
		return algebra.Attr{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			inner, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
	}
	return nil, fmt.Errorf("dsl: unexpected token %q in predicate", t.text)
}
