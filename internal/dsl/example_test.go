package dsl_test

import (
	"fmt"

	"etlopt/internal/data"
	"etlopt/internal/dsl"
)

// ExampleParse builds a workflow from its textual definition.
func ExampleParse() {
	g, err := dsl.Parse(`
recordset SRC source rows=500 schema=ID,PRICE
recordset DW target schema=ID,PRICE
activity keep filter pred="PRICE >= 10" sel=0.4
flow SRC -> keep -> DW
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("signature:", g.Signature())
	fmt.Println("activities:", len(g.Activities()))
	// Output:
	// signature: 1.3.2
	// activities: 1
}

// ExampleParsePredicate evaluates a parsed selection predicate against a
// record.
func ExampleParsePredicate() {
	pred, err := dsl.ParsePredicate("PRICE >= 10 and not(isnull(ID))")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	schema := data.Schema{"ID", "PRICE"}
	ok, _ := pred.Eval(schema, data.Record{data.NewInt(1), data.NewFloat(25)})
	rejected, _ := pred.Eval(schema, data.Record{data.Null, data.NewFloat(25)})
	fmt.Println(pred, "→", ok.Bool(), rejected.Bool())
	// Output:
	// ((PRICE>=10) and not(isnull(ID))) → true false
}
