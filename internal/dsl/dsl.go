package dsl

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"etlopt/internal/data"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// The workflow definition format is line-oriented:
//
//	# comment
//	recordset PARTS1 source rows=1000 schema=PKEY,SOURCE,DATE,ECOST
//	recordset DW.PARTS target schema=PKEY,SOURCE,DATE,ECOST
//	activity nn notnull attrs=ECOST sel=0.95
//	activity d2e convert fn=dollar2euro args=DCOST out=ECOST_D
//	activity a2e reformat fn=a2edate attr=DATE
//	activity agg aggregate group=PKEY,SOURCE,DATE fn=sum attr=ECOST_D out=ECOST sel=0.4
//	activity u union
//	activity sig filter pred="ECOST >= 100" sel=0.5
//	flow PARTS1 -> nn -> u
//	flow PARTS2 -> d2e -> a2e -> agg -> u
//	flow u -> sig -> DW.PARTS
//
// Recordset and activity names are unique identifiers; flow lines chain
// provider → consumer edges. For binary activities, the order in which
// flow lines first mention the activity as a consumer fixes its input
// order (first mention = first input).

// Parse reads a workflow definition and builds the graph with schemata
// regenerated.
func Parse(src string) (*workflow.Graph, error) {
	g := workflow.NewGraph()
	names := map[string]workflow.NodeID{}
	var flows [][]string

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields, err := splitFields(line)
		if err != nil {
			return nil, fmt.Errorf("dsl: line %d: %w", lineNo+1, err)
		}
		if len(fields) == 0 {
			continue // only quotes/whitespace on the line
		}
		switch fields[0] {
		case "recordset":
			if err := parseRecordset(g, names, fields[1:]); err != nil {
				return nil, fmt.Errorf("dsl: line %d: %w", lineNo+1, err)
			}
		case "activity":
			if err := parseActivity(g, names, fields[1:]); err != nil {
				return nil, fmt.Errorf("dsl: line %d: %w", lineNo+1, err)
			}
		case "flow":
			chain, err := parseFlow(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("dsl: line %d: %w", lineNo+1, err)
			}
			flows = append(flows, chain)
		default:
			return nil, fmt.Errorf("dsl: line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}

	for _, chain := range flows {
		for i := 0; i+1 < len(chain); i++ {
			from, ok := names[chain[i]]
			if !ok {
				return nil, fmt.Errorf("dsl: flow references unknown node %q", chain[i])
			}
			to, ok := names[chain[i+1]]
			if !ok {
				return nil, fmt.Errorf("dsl: flow references unknown node %q", chain[i+1])
			}
			if err := g.AddEdge(from, to); err != nil {
				return nil, err
			}
		}
	}
	if err := g.RegenerateSchemata(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := g.CheckWellFormed(); err != nil {
		return nil, err
	}
	return g, nil
}

// splitFields tokenizes a line into whitespace-separated fields, keeping
// double-quoted values (as in pred="A >= 1") intact.
func splitFields(line string) ([]string, error) {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, c := range line {
		switch {
		case c == '"':
			inQuote = !inQuote
		case !inQuote && (c == ' ' || c == '\t'):
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(c)
		}
	}
	if inQuote {
		return nil, fmt.Errorf("unterminated quote")
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out, nil
}

// kvArgs splits key=value fields into a map, reporting unknown bare words.
func kvArgs(fields []string) (map[string]string, []string) {
	kv := map[string]string{}
	var bare []string
	for _, f := range fields {
		if i := strings.IndexByte(f, '='); i > 0 {
			kv[f[:i]] = f[i+1:]
		} else {
			bare = append(bare, f)
		}
	}
	return kv, bare
}

func parseRecordset(g *workflow.Graph, names map[string]workflow.NodeID, fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("recordset needs a name and a role")
	}
	name := fields[0]
	if _, dup := names[name]; dup {
		return fmt.Errorf("duplicate node name %q", name)
	}
	kv, bare := kvArgs(fields[1:])
	ref := &workflow.RecordsetRef{Name: name}
	for _, b := range bare {
		switch b {
		case "source":
			ref.IsSource = true
		case "target":
			ref.IsTarget = true
		default:
			return fmt.Errorf("unknown recordset flag %q", b)
		}
	}
	schema, ok := kv["schema"]
	if !ok {
		return fmt.Errorf("recordset %s needs schema=", name)
	}
	ref.Schema = data.Schema(strings.Split(schema, ","))
	if rows, ok := kv["rows"]; ok {
		f, err := strconv.ParseFloat(rows, 64)
		if err != nil {
			return fmt.Errorf("recordset %s: bad rows=%q", name, rows)
		}
		ref.Rows = f
	}
	names[name] = g.AddRecordset(ref)
	return nil
}

func parseActivity(g *workflow.Graph, names map[string]workflow.NodeID, fields []string) error {
	if len(fields) < 2 {
		return fmt.Errorf("activity needs a name and an operation")
	}
	name, op := fields[0], fields[1]
	if _, dup := names[name]; dup {
		return fmt.Errorf("duplicate node name %q", name)
	}
	kv, _ := kvArgs(fields[2:])
	sel := 1.0
	if s, ok := kv["sel"]; ok {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("activity %s: bad sel=%q", name, s)
		}
		sel = f
	}
	attrs := func(key string) []string {
		if v, ok := kv[key]; ok && v != "" {
			return strings.Split(v, ",")
		}
		return nil
	}

	var act *workflow.Activity
	switch op {
	case "filter":
		pred, ok := kv["pred"]
		if !ok {
			return fmt.Errorf("activity %s: filter needs pred=", name)
		}
		expr, err := ParsePredicate(pred)
		if err != nil {
			return fmt.Errorf("activity %s: %w", name, err)
		}
		act = templates.Filter(expr, sel)
	case "notnull":
		a := attrs("attrs")
		if len(a) == 0 {
			return fmt.Errorf("activity %s: notnull needs attrs=", name)
		}
		act = templates.NotNull(sel, a...)
	case "pkcheck":
		a := attrs("attrs")
		if len(a) == 0 {
			return fmt.Errorf("activity %s: pkcheck needs attrs=", name)
		}
		if lk, ok := kv["lookup"]; ok {
			act = templates.PKCheckAgainst(lk, sel, a...)
		} else {
			act = templates.PKCheck(sel, a...)
		}
	case "distinct":
		act = templates.Distinct(sel)
	case "project":
		a := attrs("attrs")
		if len(a) == 0 {
			return fmt.Errorf("activity %s: project needs attrs=", name)
		}
		act = templates.ProjectOut(a...)
	case "apply", "convert":
		fn, out := kv["fn"], kv["out"]
		args := attrs("args")
		if fn == "" || out == "" || len(args) == 0 {
			return fmt.Errorf("activity %s: %s needs fn=, out= and args=", name, op)
		}
		if op == "convert" {
			act = templates.Convert(fn, out, args...)
		} else {
			act = templates.Apply(fn, out, args...)
		}
	case "reformat":
		fn, attr := kv["fn"], kv["attr"]
		if fn == "" || attr == "" {
			return fmt.Errorf("activity %s: reformat needs fn= and attr=", name)
		}
		act = templates.Reformat(fn, attr)
	case "aggregate":
		group := attrs("group")
		fn, attr, out := kv["fn"], kv["attr"], kv["out"]
		if len(group) == 0 || fn == "" || out == "" {
			return fmt.Errorf("activity %s: aggregate needs group=, fn= and out=", name)
		}
		agg, err := workflow.ParseAggKind(fn)
		if err != nil {
			return fmt.Errorf("activity %s: %w", name, err)
		}
		act = templates.Aggregate(group, agg, attr, out, sel)
	case "sk":
		key, out, lookup := kv["key"], kv["out"], kv["lookup"]
		if key == "" || out == "" || lookup == "" {
			return fmt.Errorf("activity %s: sk needs key=, out= and lookup=", name)
		}
		act = templates.SurrogateKey(key, out, lookup)
	case "union":
		act = templates.Union()
	case "join":
		keys := attrs("keys")
		if len(keys) == 0 {
			return fmt.Errorf("activity %s: join needs keys=", name)
		}
		act = templates.Join(sel, keys...)
	case "diff":
		keys := attrs("keys")
		if len(keys) == 0 {
			return fmt.Errorf("activity %s: diff needs keys=", name)
		}
		act = templates.Diff(sel, keys...)
	case "intersect":
		keys := attrs("keys")
		if len(keys) == 0 {
			return fmt.Errorf("activity %s: intersect needs keys=", name)
		}
		act = templates.Intersect(sel, keys...)
	default:
		return fmt.Errorf("activity %s: unknown operation %q", name, op)
	}
	act.Sel = sel
	if req, ok := kv["requires"]; ok {
		act.RequiredIn = data.Schema(strings.Split(req, ","))
	}
	names[name] = g.AddActivity(act)
	return nil
}

func parseFlow(fields []string) ([]string, error) {
	var chain []string
	for _, f := range fields {
		if f == "->" {
			continue
		}
		for _, part := range strings.Split(f, "->") {
			if part != "" {
				chain = append(chain, part)
			}
		}
	}
	if len(chain) < 2 {
		return nil, fmt.Errorf("flow needs at least two nodes")
	}
	return chain, nil
}

// Serialize renders a workflow back into the definition format. Activity
// names are synthesized as a<ID>; recordsets keep their names. Flows are
// written as maximal chains in topological order, so binary input order is
// preserved by first-mention order.
func Serialize(g *workflow.Graph) (string, error) {
	order, err := g.TopoSort()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	nodeName := map[workflow.NodeID]string{}
	for _, id := range order {
		n := g.Node(id)
		if n.Kind == workflow.KindRecordset {
			nodeName[id] = n.RS.Name
		} else {
			nodeName[id] = fmt.Sprintf("a%d", id)
		}
	}

	// Declarations are emitted in topological order so that re-parsing
	// assigns node IDs matching the workflow's execution priorities — the
	// paper's identifier scheme (§4.1) — and signatures round-trip.
	for _, id := range order {
		n := g.Node(id)
		if n.Kind == workflow.KindRecordset {
			role := ""
			switch {
			case len(g.Providers(id)) == 0:
				role = " source"
			case len(g.Consumers(id)) == 0:
				role = " target"
			}
			fmt.Fprintf(&b, "recordset %s%s", n.RS.Name, role)
			if n.RS.Rows > 0 {
				fmt.Fprintf(&b, " rows=%g", n.RS.Rows)
			}
			fmt.Fprintf(&b, " schema=%s\n", n.RS.Schema)
			continue
		}
		line, err := serializeActivity(nodeName[id], n.Act)
		if err != nil {
			return "", err
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')

	// Emit each edge once, ordered by (consumer's provider position) so a
	// re-parse reconstructs binary input order.
	for _, id := range order {
		for _, p := range g.Providers(id) {
			fmt.Fprintf(&b, "flow %s -> %s\n", nodeName[p], nodeName[id])
		}
	}
	return b.String(), nil
}

func serializeActivity(name string, a *workflow.Activity) (string, error) {
	sel := fmt.Sprintf(" sel=%g", a.Sel)
	var req string
	if len(a.RequiredIn) > 0 {
		req = fmt.Sprintf(" requires=%s", a.RequiredIn)
	}
	switch a.Sem.Op {
	case workflow.OpFilter:
		return fmt.Sprintf("activity %s filter pred=%q%s%s", name, a.Sem.Pred.String(), sel, req), nil
	case workflow.OpNotNull:
		return fmt.Sprintf("activity %s notnull attrs=%s%s%s", name, strings.Join(a.Sem.Attrs, ","), sel, req), nil
	case workflow.OpPKCheck:
		lk := ""
		if a.Sem.Lookup != "" {
			lk = " lookup=" + a.Sem.Lookup
		}
		return fmt.Sprintf("activity %s pkcheck attrs=%s%s%s%s", name, strings.Join(a.Sem.Attrs, ","), lk, sel, req), nil
	case workflow.OpDistinct:
		return fmt.Sprintf("activity %s distinct%s%s", name, sel, req), nil
	case workflow.OpProject:
		return fmt.Sprintf("activity %s project attrs=%s%s%s", name, strings.Join(a.Sem.Attrs, ","), sel, req), nil
	case workflow.OpFunc:
		if a.InPlace() {
			return fmt.Sprintf("activity %s reformat fn=%s attr=%s%s%s", name, a.Sem.Fn, a.Sem.OutAttr, sel, req), nil
		}
		kind := "apply"
		if a.Sem.DropArgs {
			kind = "convert"
		}
		return fmt.Sprintf("activity %s %s fn=%s args=%s out=%s%s%s",
			name, kind, a.Sem.Fn, strings.Join(a.Sem.FnArgs, ","), a.Sem.OutAttr, sel, req), nil
	case workflow.OpAggregate:
		return fmt.Sprintf("activity %s aggregate group=%s fn=%s attr=%s out=%s%s%s",
			name, strings.Join(a.Sem.Attrs, ","), a.Sem.Agg, a.Sem.AggAttr, a.Sem.OutAttr, sel, req), nil
	case workflow.OpSurrogateKey:
		return fmt.Sprintf("activity %s sk key=%s out=%s lookup=%s%s%s",
			name, a.Sem.KeyAttr, a.Sem.OutAttr, a.Sem.Lookup, sel, req), nil
	case workflow.OpUnion:
		return fmt.Sprintf("activity %s union%s%s", name, sel, req), nil
	case workflow.OpJoin:
		return fmt.Sprintf("activity %s join keys=%s%s%s", name, strings.Join(a.Sem.Attrs, ","), sel, req), nil
	case workflow.OpDiff:
		return fmt.Sprintf("activity %s diff keys=%s%s%s", name, strings.Join(a.Sem.Attrs, ","), sel, req), nil
	case workflow.OpIntersect:
		return fmt.Sprintf("activity %s intersect keys=%s%s%s", name, strings.Join(a.Sem.Attrs, ","), sel, req), nil
	case workflow.OpMerged:
		return "", fmt.Errorf("dsl: merged activities cannot be serialized; split them first")
	default:
		return "", fmt.Errorf("dsl: unknown operation %v", a.Sem.Op)
	}
}

// NodeNames returns a stable name for every node, matching Serialize's
// naming, useful for tooling that reports on parsed workflows.
func NodeNames(g *workflow.Graph) map[workflow.NodeID]string {
	out := map[workflow.NodeID]string{}
	ids := g.Nodes()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Node(id)
		if n.Kind == workflow.KindRecordset {
			out[id] = n.RS.Name
		} else {
			out[id] = fmt.Sprintf("a%d", id)
		}
	}
	return out
}
