package dsl

import (
	"os"
	"path/filepath"
	"testing"
)

// exampleSeeds loads the repository's curated example workflows as fuzz
// seeds, so the fuzzer starts from realistic full-size inputs rather than
// having to rediscover the grammar.
func exampleSeeds(f *testing.F) {
	dir := filepath.Join("..", "..", "examples", "workflows")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading example workflows: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".etl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading %s: %v", e.Name(), err)
		}
		f.Add(string(src))
	}
}

// FuzzParseDSL fuzzes the full workflow DSL pipeline: Parse never panics,
// whatever parses and serializes must re-parse, and one serialization
// normalizes the text — the second round trip is a fix-point with a stable
// signature. (The first round may legitimately renumber nodes: Serialize
// emits declarations in topological order so re-parsing assigns execution
// priorities, the §4.1 identifier scheme; a fuzz input declared out of
// topological order therefore converges on round one and must be exactly
// stable from then on.)
func FuzzParseDSL(f *testing.F) {
	exampleSeeds(f)
	f.Add(fig1Text)
	f.Add("recordset A source rows=10 schema=X\nactivity a1 filter pred=\"X > 1\" sel=0.5\nrecordset B target schema=X\n\nflow A -> a1\nflow a1 -> B\n")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text, err := Serialize(g)
		if err != nil {
			return // graphs the DSL cannot express may refuse
		}
		g2, err := Parse(text)
		if err != nil {
			t.Fatalf("serialized form does not re-parse: %v\n%s", err, text)
		}
		text2, err := Serialize(g2)
		if err != nil {
			t.Fatalf("re-parsed form does not re-serialize: %v\n%s", err, text)
		}
		g3, err := Parse(text2)
		if err != nil {
			t.Fatalf("second round trip does not re-parse: %v\n%s", err, text2)
		}
		if got, want := g3.Signature(), g2.Signature(); got != want {
			t.Fatalf("second round trip changed the signature: %q -> %q\n%s", want, got, text2)
		}
		text3, err := Serialize(g3)
		if err != nil {
			t.Fatalf("second round trip does not re-serialize: %v", err)
		}
		if text3 != text2 {
			t.Fatalf("serialization is not a fix-point after normalization:\nfirst:\n%s\nsecond:\n%s", text2, text3)
		}
	})
}
