package dsl

import (
	"testing"

	"etlopt/internal/data"
)

// FuzzParsePredicate checks the predicate parser never panics and that
// every successfully parsed expression round-trips through its String
// form with identical evaluation on a probe record.
func FuzzParsePredicate(f *testing.F) {
	for _, seed := range []string{
		"A >= 5",
		"A = 5 and B < 3 or not(isnull(S))",
		"upper(S) = 'OK'",
		"(A + B) * 2 >= 10 - A",
		"A <> 'x'",
		"not not A > 1",
		"isnull(concat(S, S))",
		"", "(((", "A >", "'", "1 2 3",
	} {
		f.Add(seed)
	}
	schema := data.Schema{"A", "B", "S"}
	probe := data.Record{data.NewInt(3), data.NewFloat(1.5), data.NewString("ok")}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParsePredicate(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		e2, err := ParsePredicate(e.String())
		if err != nil {
			t.Fatalf("String() of a parsed predicate does not re-parse: %q -> %q: %v",
				src, e.String(), err)
		}
		v1, err1 := e.Eval(schema, probe)
		v2, err2 := e2.Eval(schema, probe)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round trip changed evaluability: %v vs %v", err1, err2)
		}
		if err1 == nil && v1.Bool() != v2.Bool() {
			t.Fatalf("round trip changed value: %v vs %v", v1, v2)
		}
	})
}

// FuzzParseWorkflow checks the workflow parser never panics, and that
// whatever parses also serializes and re-parses.
func FuzzParseWorkflow(f *testing.F) {
	f.Add(fig1Text)
	f.Add("recordset A source schema=X\nrecordset B target schema=X\nflow A -> B\n")
	f.Add("activity a filter pred=\"X > 1\"\n")
	f.Add("flow A -> B -> C")
	f.Add("recordset \x00 source schema=")
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		text, err := Serialize(g)
		if err != nil {
			return // merged activities etc. are allowed to refuse
		}
		if _, err := Parse(text); err != nil {
			t.Fatalf("serialized form of a parsed workflow does not re-parse: %v\n%s", err, text)
		}
	})
}
