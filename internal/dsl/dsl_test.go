package dsl

import (
	"regexp"
	"sort"
	"strings"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/equiv"
	"etlopt/internal/generator"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

const fig1Text = `
# The paper's Fig. 1 workflow.
recordset PARTS1 source rows=1000 schema=PKEY,SOURCE,DATE,ECOST
recordset PARTS2 source rows=3000 schema=PKEY,SOURCE,DATE,DEPT,DCOST
recordset DW.PARTS target schema=PKEY,SOURCE,DATE,ECOST

activity nn notnull attrs=ECOST sel=0.95
activity d2e convert fn=dollar2euro args=DCOST out=ECOST_D sel=1
activity a2e reformat fn=a2edate attr=DATE sel=1
activity agg aggregate group=PKEY,SOURCE,DATE fn=sum attr=ECOST_D out=ECOST sel=0.4
activity u union
activity sig filter pred="ECOST >= 100" sel=0.5

flow PARTS1 -> nn -> u
flow PARTS2 -> d2e -> a2e -> agg -> u
flow u -> sig -> DW.PARTS
`

func TestParseFig1(t *testing.T) {
	g, err := Parse(fig1Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Activities()) != 6 {
		t.Errorf("activities = %d", len(g.Activities()))
	}
	if len(g.Sources()) != 2 || len(g.Targets()) != 1 {
		t.Errorf("sources/targets = %d/%d", len(g.Sources()), len(g.Targets()))
	}
	// The parsed workflow is symbolically equivalent to the programmatic
	// Fig. 1 construction.
	ok, why, err := equiv.Equivalent(g, templates.Fig1Workflow())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("parsed Fig. 1 differs from programmatic: %s", why)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown directive", "bogus X", "unknown directive"},
		{"dup name", "recordset A source schema=X\nrecordset A source schema=X", "duplicate node name"},
		{"missing schema", "recordset A source rows=5", "needs schema"},
		{"bad rows", "recordset A source rows=abc schema=X", "bad rows"},
		{"unknown op", "activity a frobnicate", "unknown operation"},
		{"filter needs pred", "activity a filter sel=0.5", "needs pred="},
		{"flow unknown node", "recordset A source schema=X\nflow A -> B", "unknown node"},
		{"flow too short", "flow A", "at least two nodes"},
		{"unterminated quote", `activity a filter pred="X > 1`, "unterminated quote"},
		{"bad sel", "activity a distinct sel=zz", "bad sel"},
		{"sk needs lookup", "activity a sk key=K out=S", "needs key=, out= and lookup="},
		{"aggregate incomplete", "activity a aggregate group=K", "needs group=, fn= and out="},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.wantErr)
		}
	}
}

func TestParseBinaryInputOrder(t *testing.T) {
	// The first flow line mentioning a binary activity as consumer feeds
	// its first input — order matters for diff.
	src := `
recordset NEW source rows=100 schema=K,V
recordset OLD source rows=50 schema=K,V
recordset OUT target schema=K,V
activity d diff keys=K sel=0.5
flow NEW -> d
flow OLD -> d
flow d -> OUT
`
	g, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var diffID workflow.NodeID
	for _, id := range g.Activities() {
		diffID = id
	}
	preds := g.Providers(diffID)
	if g.Node(preds[0]).RS.Name != "NEW" || g.Node(preds[1]).RS.Name != "OLD" {
		t.Errorf("diff inputs = %s,%s; want NEW,OLD",
			g.Node(preds[0]).RS.Name, g.Node(preds[1]).RS.Name)
	}
}

func TestSerializeRoundTripFig1(t *testing.T) {
	g := templates.Fig1Workflow()
	text, err := Serialize(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	ok, why, err := equiv.Equivalent(g, back)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("round trip lost equivalence: %s", why)
	}
	if back.Signature() != g.Signature() {
		t.Errorf("round trip changed structure: %q vs %q", back.Signature(), g.Signature())
	}
}

func TestSerializeRoundTripGenerated(t *testing.T) {
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		sc, err := generator.Generate(generator.CategoryConfig(cat, 13))
		if err != nil {
			t.Fatal(err)
		}
		text, err := Serialize(sc.Graph)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: re-parse failed: %v", cat, err)
		}
		ok, why, err := equiv.Equivalent(sc.Graph, back)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: round trip lost equivalence: %s", cat, why)
		}
	}
}

func TestSerializeMergedRejected(t *testing.T) {
	g := workflow.NewGraph()
	src := g.AddRecordset(&workflow.RecordsetRef{Name: "S", Schema: data.Schema{"A"}, IsSource: true})
	m := g.AddActivity(&workflow.Activity{
		Sem: workflow.Semantics{Op: workflow.OpMerged, Components: []*workflow.Activity{
			templates.NotNull(0.9, "A"), templates.Distinct(0.8),
		}},
		Sel: 0.72,
	})
	tgt := g.AddRecordset(&workflow.RecordsetRef{Name: "T", Schema: data.Schema{"A"}, IsTarget: true})
	g.MustAddEdge(src, m)
	g.MustAddEdge(m, tgt)
	if err := g.RegenerateSchemata(); err != nil {
		t.Fatal(err)
	}
	if _, err := Serialize(g); err == nil {
		t.Error("serializing a merged activity should fail with a clear message")
	}
}

func TestParsePredicateForms(t *testing.T) {
	schema := data.Schema{"A", "B", "S"}
	row := data.Record{data.NewInt(5), data.NewFloat(2.5), data.NewString("ok")}
	cases := []struct {
		src  string
		want bool
	}{
		{"A >= 5", true},
		{"A > 5", false},
		{"A <> 4", true},
		{"A != 5", false},
		{"A = 5 and B < 3", true},
		{"A = 5 and B > 3", false},
		{"A = 4 or B < 3", true},
		{"not A = 4", true},
		{"not(A = 5)", false},
		{"S = 'ok'", true},
		{"S = 'no'", false},
		{"isnull(S)", false},
		{"not(isnull(S))", true},
		{"A + B > 7", true},
		{"A * 2 = 10", true},
		{"(A - 1) / 2 = 2", true},
		{"A = 4 or (A = 5 and B >= 2.5)", true},
		{"upper(S) = 'OK'", true},
		{"A >= -10", true},
	}
	for _, c := range cases {
		e, err := ParsePredicate(c.src)
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", c.src, err)
			continue
		}
		v, err := e.Eval(schema, row)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if v.Bool() != c.want {
			t.Errorf("%q = %v, want %v", c.src, v.Bool(), c.want)
		}
	}
}

func TestParsePredicateErrors(t *testing.T) {
	for _, src := range []string{
		"", "A >", "A > > 1", "A ??? 1", "'unterminated", "isnull(", "f(A", "(A > 1", "A > 1 extra",
	} {
		if _, err := ParsePredicate(src); err == nil {
			t.Errorf("ParsePredicate(%q) should fail", src)
		}
	}
}

func TestPredicateRoundTrip(t *testing.T) {
	// Expr.String() must parse back to an expression with identical
	// evaluation semantics.
	schema := data.Schema{"A", "B", "S"}
	rows := data.Rows{
		{data.NewInt(1), data.NewFloat(0.5), data.NewString("x")},
		{data.NewInt(10), data.NewFloat(99), data.NewString("Y")},
		{data.Null, data.NewFloat(-3), data.NewString("")},
	}
	for _, src := range []string{
		"A >= 5 and B < 50",
		"not(isnull(A)) or S = 'x'",
		"A + B * 2 >= 10",
		"upper(S) = 'X'",
	} {
		e1, err := ParsePredicate(src)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := ParsePredicate(e1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", e1.String(), src, err)
		}
		for _, r := range rows {
			v1, err1 := e1.Eval(schema, r)
			v2, err2 := e2.Eval(schema, r)
			if (err1 == nil) != (err2 == nil) {
				t.Errorf("%q: error mismatch %v vs %v", src, err1, err2)
				continue
			}
			if err1 == nil && v1.Bool() != v2.Bool() {
				t.Errorf("%q on %v: %v vs %v", src, r, v1.Bool(), v2.Bool())
			}
		}
	}
}

func TestNodeNames(t *testing.T) {
	g := templates.Fig1Workflow()
	names := NodeNames(g)
	if len(names) != g.Len() {
		t.Errorf("NodeNames covers %d of %d nodes", len(names), g.Len())
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate node name %q", n)
		}
		seen[n] = true
	}
	if !seen["PARTS1"] || !seen["DW.PARTS"] {
		t.Error("recordsets should keep their names")
	}
}

// TestSerializeRoundTripAllOps builds a workflow exercising every
// operation kind the DSL supports — filter, notnull, both pkcheck
// variants, distinct, project, apply, convert, reformat, aggregate, sk,
// union, join, diff, intersect — and round-trips it: the serialized form
// re-parses to an equivalent workflow and serialization is idempotent
// (the serialized form is a normal form).
func TestSerializeRoundTripAllOps(t *testing.T) {
	src := `
recordset MAIN source rows=10000 schema=K,V,W,CODE,DATE,XTRA
recordset SIDE source rows=2000 schema=K,S
recordset EXCL source rows=50 schema=K
recordset KEEP source rows=70 schema=K
recordset OUT target schema=V,W10,CODE,UC,DATE,TOTV,S,SK

activity f   filter pred="V >= 10 or not(isnull(W))" sel=0.6
activity nn  notnull attrs=K,V sel=0.95
activity pk1 pkcheck attrs=K sel=0.9
activity pk2 pkcheck attrs=K lookup=DWK sel=0.9
activity dd  distinct sel=0.99
activity pj  project attrs=XTRA sel=1
activity ap  apply fn=upper args=CODE out=UC sel=1
activity cv  convert fn=scale10 args=W out=W10 sel=1
activity rf  reformat fn=a2edate attr=DATE sel=1
activity ag  aggregate group=K,V,W10,CODE,UC,DATE fn=sum attr=V out=TOTV sel=0.5
activity sk  sk key=K out=SK lookup=LKP sel=1
activity dx  diff keys=K sel=0.9
activity ix  intersect keys=K sel=0.8
activity jn  join keys=K sel=0.001

flow MAIN -> f -> nn -> pk1 -> pk2 -> dd -> pj -> ap -> cv -> rf -> ag -> dx
flow EXCL -> dx
flow dx -> ix
flow KEEP -> ix
flow ix -> jn
flow SIDE -> jn
flow jn -> sk -> OUT
`
	g, err := Parse(src)
	if err != nil {
		t.Fatalf("all-ops workflow should parse: %v", err)
	}
	text, err := Serialize(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("all-ops round trip failed to parse: %v\n%s", err, text)
	}
	ok, why, err := equiv.Equivalent(g, back)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("all-ops round trip lost equivalence: %s", why)
	}
	// Serializing the re-parse reproduces the same set of declarations and
	// flows (line order may differ where the topological order has ties,
	// since re-parsing renumbers nodes by topological priority).
	text2, err := Serialize(back)
	if err != nil {
		t.Fatal(err)
	}
	if normalizeLines(text2) != normalizeLines(text) {
		t.Errorf("serialization lost or changed lines:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}

func TestParseRejectsIllFormed(t *testing.T) {
	// Parse validates semantics: a target whose schema the flow cannot
	// deliver is rejected up front.
	src := `
recordset S source rows=10 schema=A
recordset T target schema=A,MISSING
flow S -> T
`
	if _, err := Parse(src); err == nil {
		t.Error("target schema mismatch should fail at parse time")
	}
}

// normalizeLines sorts a serialization's lines after erasing the
// synthetic a<ID> activity names, which depend on node numbering.
func normalizeLines(text string) string {
	re := regexp.MustCompile(`\ba[0-9]+\b`)
	lines := strings.Split(re.ReplaceAllString(text, "aX"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
