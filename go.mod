module etlopt

go 1.22
