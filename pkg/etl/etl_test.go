package etl_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"etlopt/pkg/etl"
)

const quickstartDSL = `
recordset ORDERS source rows=10000 schema=ORDER_ID,CUST,DAMT
activity nn notnull attrs=CUST sel=0.95
activity conv convert fn=dollar2euro args=DAMT out=EAMT
activity keep filter pred="EAMT >= 50" sel=0.3
recordset DW target schema=ORDER_ID,CUST,EAMT
flow ORDERS -> nn -> conv -> keep -> DW
`

func buildBindings() map[string]etl.Recordset {
	rows := etl.Rows{
		{etl.NewInt(1), etl.NewString("acme"), etl.NewFloat(40)},
		{etl.NewInt(2), etl.NewString("acme"), etl.NewFloat(90)},
		{etl.NewInt(3), etl.Null, etl.NewFloat(200)},
		{etl.NewInt(4), etl.NewString("zeta"), etl.NewFloat(55.5)},
		{etl.NewInt(5), etl.NewString("zeta"), etl.NewFloat(70)},
	}
	return map[string]etl.Recordset{
		"ORDERS": etl.NewMemoryRecordset("ORDERS", etl.Schema{"ORDER_ID", "CUST", "DAMT"}).MustLoad(rows),
	}
}

func TestOptimizeRunVerifyRoundTrip(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []etl.Algorithm{etl.ES, etl.HS, etl.HSGreedy, ""} {
		res, err := etl.Optimize(ctx, g, etl.Options{Algorithm: algo, MaxStates: 10_000})
		if err != nil {
			t.Fatalf("%q: %v", algo, err)
		}
		if res.BestCost > res.InitialCost {
			t.Errorf("%q: optimization made the workflow worse", algo)
		}
		bindings := buildBindings()
		run, err := etl.Run(ctx, res.Best, bindings)
		if err != nil {
			t.Fatalf("%q: run: %v", algo, err)
		}
		// NN drops order 3; after $→€ conversion the threshold drops
		// orders 1 and 4, leaving orders 2 and 5.
		if got := len(run.Targets["DW"]); got != 2 {
			t.Errorf("%q: loaded %d rows into DW, want 2", algo, got)
		}
		ok, diff, err := etl.VerifyEmpirical(g, res.Best, buildBindings())
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%q: optimized workflow not equivalent: %s", algo, diff)
		}
	}
}

func TestOptimizeUnknownAlgorithm(t *testing.T) {
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := etl.Optimize(context.Background(), g, etl.Options{Algorithm: "magic"}); err == nil {
		t.Error("unknown algorithm should be rejected")
	}
}

func TestOptimizeCancellation(t *testing.T) {
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := etl.Optimize(ctx, g, etl.Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Optimize err = %v, want context.Canceled", err)
	}
	if _, err := etl.Run(ctx, g, buildBindings()); !errors.Is(err, context.Canceled) {
		t.Errorf("Run err = %v, want context.Canceled", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	src, err := etl.Serialize(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "recordset ORDERS") {
		t.Errorf("serialized DSL missing source declaration:\n%s", src)
	}
	g2, err := etl.Parse(src)
	if err != nil {
		t.Fatalf("re-parsing serialized DSL: %v", err)
	}
	if g.Signature() != g2.Signature() {
		t.Errorf("round trip changed the workflow: %s vs %s", g.Signature(), g2.Signature())
	}
}

func TestMetricsFacade(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	if etl.Metrics() == nil || etl.Metrics() != etl.Metrics() {
		t.Fatal("etl.Metrics() must return one stable package-level registry")
	}
	reg := etl.NewMetricsRegistry()
	res, err := etl.Optimize(ctx, g, etl.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := etl.Run(ctx, res.Best, buildBindings(), etl.WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if v, ok := snap.CounterValue("search_states_visited_total"); !ok || v == 0 {
		t.Errorf("search_states_visited_total = %d, %v; want > 0", v, ok)
	}
	if v, ok := snap.CounterValue(`engine_runs_total{mode="materialized"}`); !ok || v != 1 {
		t.Errorf(`engine_runs_total{mode="materialized"} = %d, %v; want 1`, v, ok)
	}
	// The default registry stayed untouched by the isolated one above.
	if _, ok := etl.Metrics().Snapshot().CounterValue("search_states_visited_total"); ok {
		t.Error("isolated registry leaked series into etl.Metrics()")
	}
}

func TestWorkersOptionDeterminism(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := etl.Optimize(ctx, g, etl.Options{Algorithm: etl.ES, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := etl.Optimize(ctx, g, etl.Options{Algorithm: etl.ES, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.BestCost != par.BestCost || seq.Best.Signature() != par.Best.Signature() {
		t.Errorf("workers changed the result: (%v,%s) vs (%v,%s)",
			seq.BestCost, seq.Best.Signature(), par.BestCost, par.Best.Signature())
	}
}
