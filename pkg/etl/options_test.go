package etl_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"etlopt/internal/cost"
	"etlopt/pkg/etl"
)

// TestUnifiedOptionsEquivalence pins the shim contract: the deprecated
// Options struct and the equivalent With… options must drive Optimize to
// identical results.
func TestUnifiedOptionsEquivalence(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	old, err := etl.Optimize(ctx, g, etl.Options{Algorithm: etl.ES, MaxStates: 10_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	unified, err := etl.Optimize(ctx, g,
		etl.WithAlgorithm(etl.ES), etl.WithMaxStates(10_000), etl.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if old.BestCost != unified.BestCost {
		t.Errorf("BestCost: struct %v, options %v", old.BestCost, unified.BestCost)
	}
	if old.Best.Signature() != unified.Best.Signature() {
		t.Errorf("signatures diverge:\n struct:  %s\n options: %s",
			old.Best.Signature(), unified.Best.Signature())
	}
	full, err := etl.Optimize(ctx, g,
		etl.WithAlgorithm(etl.ES), etl.WithMaxStates(10_000), etl.WithFullCostEval())
	if err != nil {
		t.Fatal(err)
	}
	if full.BestCost != old.BestCost {
		t.Errorf("full cost eval changed the result: %v vs %v", full.BestCost, old.BestCost)
	}
}

// TestModelAndConstraintOptions pins the remaining Optimize options: an
// explicit row model, a group cap and empty merge constraints must all
// reproduce the default result, and NewGraph starts empty.
func TestModelAndConstraintOptions(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	base, err := etl.Optimize(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := etl.Optimize(ctx, g,
		etl.WithModel(cost.RowModel{}), etl.WithGroupCap(64), etl.WithMergeConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if base.BestCost != tuned.BestCost {
		t.Errorf("explicit defaults changed the result: %v vs %v", tuned.BestCost, base.BestCost)
	}
	if fresh := etl.NewGraph(); fresh == nil || fresh.Len() != 0 {
		t.Errorf("NewGraph not empty: %v", fresh)
	}
}

// TestRunModesViaOptions runs the quickstart workflow through all three
// engine modes using the unified options and requires identical targets.
func TestRunModesViaOptions(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	base, err := etl.Run(ctx, g, buildBindings())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts []etl.Option
	}{
		{"pipelined", []etl.Option{etl.WithMode(etl.Pipelined), etl.WithBatchSize(2)}},
		{"parallel", []etl.Option{etl.WithMode(etl.Parallel), etl.WithPartitions(8)}},
	} {
		run, err := etl.Run(ctx, g, buildBindings(), tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for name, want := range base.Targets {
			if !want.EqualMultiset(run.Targets[name]) {
				t.Errorf("%s: target %s differs from materialized", tc.name, name)
			}
		}
	}
}

// TestPartitionsImplyParallelMode pins the quickstart idiom: passing
// WithPartitions alone selects Parallel mode, while an explicit WithMode
// still wins over the implication.
func TestPartitionsImplyParallelMode(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	base, err := etl.Run(ctx, g, buildBindings())
	if err != nil {
		t.Fatal(err)
	}
	reg := etl.NewMetricsRegistry()
	run, err := etl.Run(ctx, g, buildBindings(), etl.WithPartitions(3), etl.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range base.Targets {
		if !want.EqualMultiset(run.Targets[name]) {
			t.Errorf("target %s differs from materialized", name)
		}
	}
	if v, ok := reg.Snapshot().CounterValue(`engine_runs_total{mode="parallel"}`); !ok || v != 1 {
		t.Errorf("WithPartitions alone did not run parallel: runs=%d ok=%v", v, ok)
	}
	reg = etl.NewMetricsRegistry()
	if _, err := etl.Run(ctx, g, buildBindings(),
		etl.WithMode(etl.Materialized), etl.WithPartitions(3), etl.WithMetrics(reg)); err != nil {
		t.Fatal(err)
	}
	if v, ok := reg.Snapshot().CounterValue(`engine_runs_total{mode="materialized"}`); !ok || v != 1 {
		t.Errorf("explicit WithMode lost to the partitions implication: runs=%d ok=%v", v, ok)
	}
}

// TestJournalOptionSpansPipeline pins the facade's flight-recorder
// contract: one WithJournal option slice feeds both Optimize and Run,
// the recording changes no result, and the closed journal parses back
// with both runs' boundaries and the summary trailer.
func TestJournalOptionSpansPipeline(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	base, err := etl.Optimize(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	baseRun, err := etl.Run(ctx, base.Best, buildBindings())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	j := etl.NewJournal(&buf, nil)
	opts := []etl.Option{etl.WithJournal(j), etl.WithProfileLabels(), etl.WithPartitions(4)}
	res, err := etl.Optimize(ctx, g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	run, err := etl.Run(ctx, res.Best, buildBindings(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("closing journal: %v", err)
	}
	if res.BestCost != base.BestCost || res.Best.Signature() != base.Best.Signature() {
		t.Errorf("journal changed the optimization: cost %v vs %v", res.BestCost, base.BestCost)
	}
	for name, want := range baseRun.Targets {
		if !want.EqualMultiset(run.Targets[name]) {
			t.Errorf("journal changed target %s", name)
		}
	}

	evs, err := etl.ReadJournal(&buf)
	if err != nil {
		t.Fatalf("journal unreadable: %v", err)
	}
	var runs, summaries int
	for _, e := range evs {
		switch e.T {
		case "run":
			runs++
		case "summary":
			summaries++
		}
	}
	if runs != 4 {
		t.Errorf("%d run boundaries, want start/end for both the search and the engine", runs)
	}
	if summaries != 1 {
		t.Errorf("%d summary trailers, want 1", summaries)
	}
}

// TestOneOptionSliceForBothEntryPoints verifies cross-entry-point
// tolerance: a single slice mixing search and engine options configures
// Optimize and Run without error, and WithMetrics feeds both.
func TestOneOptionSliceForBothEntryPoints(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	reg := etl.NewMetricsRegistry()
	opts := []etl.Option{
		etl.WithAlgorithm(etl.HS),
		etl.WithWorkers(2),
		etl.WithMode(etl.Parallel),
		etl.WithPartitions(4),
		etl.WithMetrics(reg),
	}
	res, err := etl.Optimize(ctx, g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := etl.Run(ctx, res.Best, buildBindings(), opts...); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var sawSearch, sawEngine bool
	for _, c := range snap.Counters {
		if c.Family == "search_states_generated_total" {
			sawSearch = true
		}
		if c.Family == "engine_runs_total" && c.Value > 0 {
			sawEngine = true
		}
	}
	if !sawSearch || !sawEngine {
		t.Errorf("shared registry missing series: search=%v engine=%v", sawSearch, sawEngine)
	}
}

// TestRunFaultOptions pins the facade's failure-path surface: a seeded
// transient plan plus a retry policy recovers to the clean answer, the
// same seed under a permanent kind surfaces a typed *FaultInjected, and
// a zero-value RetryPolicy leaves the engine untouched.
func TestRunFaultOptions(t *testing.T) {
	ctx := context.Background()
	g, err := etl.Parse(quickstartDSL)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := etl.Run(ctx, g, buildBindings())
	if err != nil {
		t.Fatal(err)
	}

	recovered, err := etl.Run(ctx, g, buildBindings(),
		etl.WithPartitions(4),
		etl.WithFaultPlan(etl.NewFaultPlan(42, 1.0)),
		etl.WithRetry(etl.RetryPolicy{MaxAttempts: 8, Seed: 42}),
	)
	if err != nil {
		t.Fatalf("faulted run did not recover: %v", err)
	}
	if got, want := len(recovered.Targets["DW"]), len(clean.Targets["DW"]); got != want {
		t.Errorf("recovered run loaded %d rows, clean run %d", got, want)
	}

	_, err = etl.Run(ctx, g, buildBindings(),
		etl.WithFaultPlan(etl.NewFaultPlan(42, 1.0, etl.WithFaultKind(etl.FaultPermanent))),
		etl.WithRetry(etl.RetryPolicy{MaxAttempts: 8, Seed: 42}),
	)
	var inj *etl.FaultInjected
	if !errors.As(err, &inj) {
		t.Fatalf("permanent plan did not surface a typed *etl.FaultInjected: %v", err)
	}
	if inj.Site == "" || inj.Kind != etl.FaultPermanent {
		t.Errorf("attribution incomplete: %+v", inj)
	}

	seed, rate, err := etl.ParseFaultSpec("7:0.25")
	if err != nil || seed != 7 || rate != 0.25 {
		t.Errorf("ParseFaultSpec: got (%d, %v, %v)", seed, rate, err)
	}
}
