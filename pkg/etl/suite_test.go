package etl_test

import (
	"context"
	"reflect"
	"testing"

	"etlopt/internal/generator"
	"etlopt/pkg/etl"
)

// TestRunSuiteFacade exercises the public suite surface end to end: a
// shared-prefix suite run through RunSuite must reproduce each member's
// individual Run bit-for-bit, while the journal and metrics record shared
// cache activity.
func TestRunSuiteFacade(t *testing.T) {
	scs, err := generator.SharedSuite(generator.Small, 2, 2026)
	if err != nil {
		t.Fatal(err)
	}
	wfs := make([]etl.SuiteWorkflow, len(scs))
	solos := make([]*etl.RunResult, len(scs))
	for i, sc := range scs {
		wfs[i] = etl.SuiteWorkflow{Graph: sc.Graph, Bindings: sc.Bind()}
		solos[i], err = etl.Run(context.Background(), sc.Graph, sc.Bind())
		if err != nil {
			t.Fatal(err)
		}
	}

	reg := etl.NewMetricsRegistry()
	res, err := etl.RunSuite(context.Background(), wfs,
		etl.WithSuiteWorkers(2),
		etl.WithSharedCache(1<<20),
		etl.WithSharedSpill(t.TempDir()),
		etl.WithPartitions(2),
		etl.WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i, wr := range res.Workflows {
		if wr.Err != nil {
			t.Fatalf("workflow %d: %v", i, wr.Err)
		}
		if !reflect.DeepEqual(wr.Result.Targets, solos[i].Targets) {
			t.Fatalf("workflow %d: suite targets differ from solo run", i)
		}
		if !reflect.DeepEqual(wr.Result.NodeRows, solos[i].NodeRows) {
			t.Fatalf("workflow %d: suite NodeRows differ from solo run", i)
		}
	}
	if res.Stats.Cache.Lookups == 0 {
		t.Fatal("suite run recorded no cache lookups")
	}
	snap := reg.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Series == "shared_cache_lookups_total" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("metrics registry missing shared_cache_lookups_total")
	}
}
