// Package etl is the public facade of the ETL workflow optimizer. It
// bundles the pieces an embedding application needs — building or parsing
// a workflow graph, optimizing it with the paper's state-space search
// (ES, HS, HS-Greedy), executing it over bound recordsets, and verifying
// that the optimized workflow is equivalent to the original — behind one
// import path, re-exporting the internal packages' types as aliases so
// values flow freely between the facade and any future exported
// subpackages.
//
// The two entry points are context-first and share one functional-options
// vocabulary:
//
//	res, err := etl.Optimize(ctx, g, etl.WithAlgorithm(etl.HS))
//	run, err := etl.Run(ctx, res.Best, bindings, etl.WithPartitions(8))
//
// A third entry point, RunSuite, executes several workflows as one job,
// computing shared upstream work once through a content-addressed
// intermediate-result cache:
//
//	suite, err := etl.RunSuite(ctx, workflows, etl.WithSharedCache(64<<20))
//
// Search options (WithAlgorithm, WithWorkers, …) configure Optimize;
// engine options (WithMode, WithPartitions, WithBatchSize, WithFaultPlan,
// WithRetry) configure Run and RunSuite; suite options (WithSuiteWorkers,
// WithSharedCache, WithSharedSpill) configure RunSuite; WithMetrics and
// WithJournal configure all three. Passing an option to the entry point it
// does not affect is harmless, so one option slice can serve a whole
// pipeline. The legacy Options struct still works as an Option value.
//
// Cancelling the context aborts the optimizer at the next state-expansion
// boundary and the engine at the next node, partition or batch boundary,
// returning an error wrapping ctx.Err().
package etl

import (
	"context"
	"fmt"

	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/share"
	"etlopt/internal/workflow"
)

// Re-exported types. These are aliases, not copies: a *etl.Graph is a
// *workflow.Graph, so graphs built here work with every part of the
// system and vice versa.
type (
	// Graph is a workflow: a DAG of recordset and activity nodes.
	Graph = workflow.Graph
	// NodeID identifies a node within a Graph.
	NodeID = workflow.NodeID
	// RecordsetRef declares a source or target recordset in a Graph.
	RecordsetRef = workflow.RecordsetRef
	// Activity is one transformation step (selection, function, join, …).
	Activity = workflow.Activity
	// Result reports an optimization run (best graph, costs, statistics).
	Result = core.Result
	// RunResult reports a workflow execution (target rows, node counts).
	RunResult = engine.RunResult
	// Recordset is the storage abstraction workflows read and load.
	Recordset = data.Recordset
	// MemoryRecordset is an in-memory Recordset, convenient for tests and
	// examples.
	MemoryRecordset = data.MemoryRecordset
	// Schema is an ordered attribute list.
	Schema = data.Schema
	// Record is one tuple; Rows is a slice of them.
	Record = data.Record
	// Rows is a multiset of records.
	Rows = data.Rows
	// Value is one typed attribute value.
	Value = data.Value
	// CostModel prices workflow states; the default is the paper's
	// row-count model.
	CostModel = cost.Model
	// Mode selects the engine's execution strategy.
	Mode = engine.Mode
	// EngineOption configures an engine directly.
	//
	// Deprecated: Run now takes the package's unified Option values
	// (WithMode, WithPartitions, WithBatchSize, WithMetrics); use those.
	// EngineOption remains for callers constructing engines via the
	// internal engine package's vocabulary.
	EngineOption = engine.Option
	// MetricsRegistry collects observability series (counters, gauges,
	// histograms, spans) from the optimizer and the engine. Collection is
	// write-only: results are bit-identical with metrics on or off.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a MetricsRegistry,
	// serializable as JSON or Prometheus text.
	MetricsSnapshot = obs.Snapshot
	// Journal is the flight recorder: a bounded, lossy, structured JSONL
	// run journal of search transitions, executed nodes, partition
	// batches and checkpoint steps. Like metrics, collection is
	// write-only: results are bit-identical with the journal on or off.
	Journal = obs.Journal
	// JournalEvent is one journal record; all event types share this flat
	// shape.
	JournalEvent = obs.Event
	// FaultPlan is a deterministic fault-injection schedule: a pure
	// function of (seed, injection site, node, partition, occurrence), so
	// the same plan replays the same failures on every run. Build one
	// with NewFaultPlan and arm it via WithFaultPlan.
	FaultPlan = fault.Plan
	// FaultInjected is the typed error an armed FaultPlan returns, naming
	// the injection site, node, partition and occurrence.
	FaultInjected = fault.Injected
	// RetryPolicy bounds per-node retries of transient failures with
	// capped, deterministically jittered exponential backoff. Arm it via
	// WithRetry.
	RetryPolicy = fault.Policy
	// FaultPlanOption refines a NewFaultPlan call (kind, latency, site
	// filter, per-key budget).
	FaultPlanOption = fault.PlanOption
	// FaultKind distinguishes transient (retryable) from permanent
	// injected faults.
	FaultKind = fault.Kind
	// SuiteWorkflow is one member of a RunSuite job: a named graph plus
	// its recordset bindings.
	SuiteWorkflow = share.Workflow
	// SuiteResult reports a RunSuite job: per-workflow outcomes in input
	// order plus suite-level sharing statistics.
	SuiteResult = share.Result
	// SuiteWorkflowResult is one workflow's outcome within a SuiteResult;
	// exactly one of Result and Err is set.
	SuiteWorkflowResult = share.WorkflowResult
	// SuiteStats summarizes what sharing bought: stage and node accounting
	// plus the shared cache's byte-level counters.
	SuiteStats = share.Stats
	// SharedCacheStats is the shared intermediate-result cache's cumulative
	// accounting.
	SharedCacheStats = share.CacheStats
)

// Fault kinds for WithFaultKind.
const (
	// FaultTransient faults succeed on retry — the default kind.
	FaultTransient = fault.Transient
	// FaultPermanent faults fail the run regardless of retry budget.
	FaultPermanent = fault.Permanent
)

// FaultPlan refinements, passed to NewFaultPlan.
var (
	// WithFaultKind sets the kind of every injected fault.
	WithFaultKind = fault.WithKind
	// WithFaultLatency adds a context-aware sleep before each injected
	// failure, modeling slow-then-dead dependencies.
	WithFaultLatency = fault.WithLatency
	// WithFaultSites restricts injection to the listed sites.
	WithFaultSites = fault.WithSites
	// WithFaultMaxPerKey caps how often one (site, node, partition) key
	// may fire (default 1).
	WithFaultMaxPerKey = fault.WithMaxPerKey
)

// Execution modes for WithMode.
const (
	// Materialized evaluates nodes one at a time in topological order.
	Materialized = engine.Materialized
	// Pipelined streams records between concurrent node goroutines.
	Pipelined = engine.Pipelined
	// Parallel partitions every recordset across P workers (see
	// WithPartitions) and merges deterministically: target rows are
	// bit-identical to Materialized at any partition count.
	Parallel = engine.Parallel
)

// Null is the SQL-style null Value.
var Null = data.Null

// Value constructors.
var (
	// NewInt wraps an int64 as a Value.
	NewInt = data.NewInt
	// NewFloat wraps a float64 as a Value.
	NewFloat = data.NewFloat
	// NewString wraps a string as a Value.
	NewString = data.NewString
	// NewBool wraps a bool as a Value.
	NewBool = data.NewBool
)

// Option configures Optimize and/or Run. Options are built with the
// package's With… constructors; the legacy Options struct is itself an
// Option, so pre-existing call sites keep working:
//
//	etl.Optimize(ctx, g, etl.Options{Algorithm: etl.ES}) // still valid
//	etl.Optimize(ctx, g, etl.WithAlgorithm(etl.ES))      // preferred
type Option interface{ apply(*settings) }

// optionFunc adapts a plain function to the Option interface.
type optionFunc func(*settings)

func (f optionFunc) apply(s *settings) { f(s) }

// settings is the merged configuration of one Optimize or Run call.
type settings struct {
	search core.Options
	algo   Algorithm

	mode       Mode
	modeSet    bool
	partitions int
	batch      int
	metrics    *MetricsRegistry
	journal    *Journal
	profile    bool
	faultPlan  *FaultPlan
	retry      RetryPolicy

	suiteWorkers int
	cacheBytes   int64
	cacheSet     bool
	spillDir     string
}

// WithAlgorithm selects the optimization search (default HS). Optimize
// only.
func WithAlgorithm(a Algorithm) Option {
	return optionFunc(func(s *settings) { s.algo = a })
}

// WithModel prices states with a custom cost model (default: the paper's
// row-count model). Optimize only.
func WithModel(m CostModel) Option {
	return optionFunc(func(s *settings) { s.search.Model = m })
}

// WithMaxStates bounds the search's generated states (0 = package
// default). Optimize only.
func WithMaxStates(n int) Option {
	return optionFunc(func(s *settings) { s.search.MaxStates = n })
}

// WithGroupCap bounds HS's per-local-group exploration (0 = default).
// Optimize only.
func WithGroupCap(n int) Option {
	return optionFunc(func(s *settings) { s.search.GroupCap = n })
}

// WithWorkers sets the search's parallelism: 0 means GOMAXPROCS, 1 is
// fully sequential; results are identical for every value. Optimize only
// — the engine's parallelism is WithPartitions.
func WithWorkers(n int) Option {
	return optionFunc(func(s *settings) { s.search.Workers = n })
}

// WithMergeConstraints lists activity pairs that must move as one unit
// during the search (HS pre-processing; split again afterwards). Optimize
// only.
func WithMergeConstraints(pairs ...[2]NodeID) Option {
	return optionFunc(func(s *settings) { s.search.MergeConstraints = pairs })
}

// WithFullCostEval disables the semi-incremental cost evaluation and
// recomputes every state's cost from scratch. Results are identical;
// incremental is faster. Optimize only.
func WithFullCostEval() Option {
	return optionFunc(func(s *settings) { s.search.IncrementalCost = false })
}

// WithMetrics collects observability series into r — search series from
// Optimize, engine series from Run. etl.Metrics() supplies the
// package-wide default registry. Collection never affects results.
func WithMetrics(r *MetricsRegistry) Option {
	return optionFunc(func(s *settings) { s.metrics = r })
}

// WithJournal records the run's structured event stream into j — search
// transitions and phases from Optimize, node/batch/exchange events from
// Run. The caller owns j and closes it when the pipeline is done; one
// journal can span several Optimize and Run calls. Collection never
// affects results.
func WithJournal(j *Journal) Option {
	return optionFunc(func(s *settings) { s.journal = j })
}

// WithProfileLabels tags search workers and engine partitions with
// runtime/pprof labels (etl=search/engine, etl_worker, etl_node,
// etl_partition), so CPU profiles attribute samples per worker and per
// partition. Purely observational.
func WithProfileLabels() Option {
	return optionFunc(func(s *settings) { s.profile = true })
}

// WithMode selects the execution mode (default Materialized). Run only.
func WithMode(m Mode) Option {
	return optionFunc(func(s *settings) { s.mode = m; s.modeSet = true })
}

// WithPartitions sets the partition count for partition-parallel
// execution (default: the number of CPUs) and, unless WithMode is given
// explicitly, selects Parallel mode — etl.Run(ctx, g, bindings,
// etl.WithPartitions(8)) is a complete parallel run. Output is
// bit-identical at any count. Run only — the search's parallelism is
// WithWorkers.
func WithPartitions(n int) Option {
	return optionFunc(func(s *settings) { s.partitions = n })
}

// WithBatchSize sets the pipelined mode's channel batch size (default
// 64). Run only.
func WithBatchSize(n int) Option {
	return optionFunc(func(s *settings) { s.batch = n })
}

// WithFaultPlan arms deterministic fault injection on the run: the plan
// decides, as a pure function of its seed and each injection site, which
// node starts, batch emits, repartition exchanges and checkpoint steps
// fail. Pair it with WithRetry to exercise recovery; without a retry
// policy every injected fault surfaces as a *FaultInjected error. Run
// only.
func WithFaultPlan(p *FaultPlan) Option {
	return optionFunc(func(s *settings) { s.faultPlan = p })
}

// WithRetry re-runs transiently failed nodes under the policy's attempt
// budget and capped, deterministically jittered exponential backoff.
// Permanent faults and context cancellation are never retried. Run only.
func WithRetry(p RetryPolicy) Option {
	return optionFunc(func(s *settings) { s.retry = p })
}

// WithSuiteWorkers bounds how many producer stages and residual workflows
// RunSuite executes concurrently; 0 or less means GOMAXPROCS. Each stage
// or workflow may still parallelize internally via WithPartitions. Results
// are identical at every worker count. RunSuite only.
func WithSuiteWorkers(n int) Option {
	return optionFunc(func(s *settings) { s.suiteWorkers = n })
}

// WithSharedCache sets RunSuite's intermediate-result cache budget in
// estimated bytes. The default is unbounded; 0 disables retention entirely
// (every shared intermediate is recomputed per consumer — or reloaded from
// disk under WithSharedSpill), and any budget in between evicts least
// recently used intermediates first. Workflow outputs are bit-identical at
// every budget. RunSuite only.
func WithSharedCache(bytes int64) Option {
	return optionFunc(func(s *settings) { s.cacheBytes = bytes; s.cacheSet = true })
}

// WithSharedSpill spills evicted shared intermediates to CSV files (the
// checkpoint staging format) under dir instead of dropping them, trading
// recomputation for disk reads when the cache budget is tight. RunSuite
// only.
func WithSharedSpill(dir string) Option {
	return optionFunc(func(s *settings) { s.spillDir = dir })
}

// defaultMetrics is the package-level registry Metrics returns: the
// rendezvous point for applications that want one process-wide view of
// every Optimize and Run they route through it.
var defaultMetrics = obs.NewRegistry()

// Metrics returns the package's default metrics registry. Pass it to
// Optimize via Options.Metrics and to Run via WithMetrics(etl.Metrics()),
// then export it with Snapshot():
//
//	snap := etl.Metrics().Snapshot()
//	snap.WriteJSON(os.Stdout)       // or snap.WritePrometheus(w)
//
// Applications that want isolated collection build their own registry
// with NewMetricsRegistry instead.
func Metrics() *MetricsRegistry { return defaultMetrics }

// NewMetricsRegistry returns a fresh, empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewJournal starts a flight-recorder journal writing JSONL to w. reg,
// when non-nil, mirrors the journal's own accounting (events written,
// dropped, write errors) as counters; nil skips the mirroring. Close the
// journal to flush it and append the summary trailer.
var NewJournal = obs.NewJournal

// NewJournalFile opens (creating or truncating) path and starts a
// journal on it; Close also closes the file.
var NewJournalFile = obs.NewJournalFile

// ReadJournal parses a JSONL journal stream back into events.
var ReadJournal = obs.ReadJournal

// ReadJournalFile parses a JSONL journal file back into events.
var ReadJournalFile = obs.ReadJournalFile

// NewFaultPlan builds a deterministic fault-injection plan from a seed
// and a per-occurrence firing rate in [0, 1]; see WithFaultPlan. The
// internal/fault package's options (kind, latency, site filter,
// per-key budget) refine it.
var NewFaultPlan = fault.NewPlan

// ParseFaultSpec parses the CLI-style "seed:rate" fault arming shared by
// etlrun and etlbench into NewFaultPlan's arguments.
var ParseFaultSpec = fault.ParseSpec

// NewGraph returns an empty workflow graph.
func NewGraph() *Graph { return workflow.NewGraph() }

// NewMemoryRecordset returns an empty in-memory recordset.
func NewMemoryRecordset(name string, schema Schema) *MemoryRecordset {
	return data.NewMemoryRecordset(name, schema)
}

// Parse builds a Graph from the line-oriented workflow DSL (see
// internal/dsl: `recordset`, `activity` and `flow` directives).
func Parse(src string) (*Graph, error) { return dsl.Parse(src) }

// Serialize renders a Graph back into the DSL.
func Serialize(g *Graph) (string, error) { return dsl.Serialize(g) }

// Algorithm selects the optimization search.
type Algorithm string

// The three search algorithms of the paper (§4.2).
const (
	// ES is exhaustive search: the global optimum, exponential state
	// space — bound it with Options.MaxStates.
	ES Algorithm = "es"
	// HS is the heuristic search of Fig. 7 — near-optimal at a fraction
	// of ES's cost; the default.
	HS Algorithm = "hs"
	// HSGreedy replaces HS's per-group exploration with hill-climbing —
	// fastest, may miss improvements on large workflows.
	HSGreedy Algorithm = "hs-greedy"
)

// Options configures Optimize as one struct. The zero value asks for the
// heuristic search with semi-incremental costing and the package defaults
// — the configuration the paper's experiments recommend.
//
// Deprecated: Options is the facade's original configuration surface,
// kept as a thin shim — it implements Option, so existing
// Optimize(ctx, g, etl.Options{…}) call sites compile and behave
// unchanged. New code should pass the equivalent With… options
// (WithAlgorithm, WithModel, WithMaxStates, WithGroupCap, WithWorkers,
// WithMergeConstraints, WithFullCostEval, WithMetrics) directly.
type Options struct {
	// Algorithm selects the search; empty means HS.
	Algorithm Algorithm
	// Model prices states; nil means the paper's row-count model.
	Model CostModel
	// MaxStates bounds generated states (0 = package default).
	MaxStates int
	// GroupCap bounds HS's per-local-group exploration (0 = default).
	GroupCap int
	// Workers sets the search's parallelism; 0 means GOMAXPROCS, 1 is
	// fully sequential. Results are identical for every value.
	Workers int
	// MergeConstraints lists activity pairs that must move as one unit
	// (HS pre-processing; split again afterwards).
	MergeConstraints [][2]NodeID
	// FullCostEval disables the semi-incremental cost evaluation and
	// recomputes every state's cost from scratch. Results are identical;
	// incremental is faster.
	FullCostEval bool
	// Metrics, when non-nil, collects the search's observability series
	// (states generated/visited/deduped, per-transition-kind counts, best
	// cost, worker utilization). etl.Metrics() supplies the package-wide
	// default registry. Collection never affects results.
	Metrics *MetricsRegistry
}

// apply folds the legacy struct into the unified settings, making an
// Options value usable anywhere an Option is expected.
func (o Options) apply(s *settings) {
	s.algo = o.Algorithm
	s.search.Model = o.Model
	s.search.MaxStates = o.MaxStates
	s.search.GroupCap = o.GroupCap
	s.search.Workers = o.Workers
	s.search.MergeConstraints = o.MergeConstraints
	s.search.IncrementalCost = !o.FullCostEval
	if o.Metrics != nil {
		s.metrics = o.Metrics
	}
}

// newSettings resolves the option list over the package defaults.
func newSettings(opts []Option) settings {
	s := settings{
		search: core.Options{IncrementalCost: true},
		algo:   HS,
		mode:   Materialized,
	}
	for _, o := range opts {
		if o != nil {
			o.apply(&s)
		}
	}
	return s
}

// Optimize searches for the cheapest workflow equivalent to g and returns
// the best state found. A cancelled ctx aborts with an error wrapping
// ctx.Err(). Engine-only options are accepted and ignored, so one option
// slice can configure a whole optimize-then-run pipeline.
func Optimize(ctx context.Context, g *Graph, opts ...Option) (*Result, error) {
	s := newSettings(opts)
	s.search.Metrics = s.metrics
	s.search.Journal = s.journal
	s.search.PprofLabels = s.profile
	switch s.algo {
	case ES:
		return core.Exhaustive(ctx, g, s.search)
	case HS, "":
		return core.Heuristic(ctx, g, s.search)
	case HSGreedy:
		return core.HSGreedy(ctx, g, s.search)
	default:
		return nil, fmt.Errorf("etl: unknown algorithm %q", s.algo)
	}
}

// Run executes the workflow against the bound recordsets: every source
// must be bound by name; bound targets receive the loaded rows. A
// cancelled ctx aborts with an error wrapping ctx.Err(). Search-only
// options are accepted and ignored.
func Run(ctx context.Context, g *Graph, bindings map[string]Recordset, opts ...Option) (*RunResult, error) {
	s := newSettings(opts)
	return engine.New(bindings, s.engineOptions()...).Run(ctx, g)
}

// engineOptions lowers the merged settings to the internal engine's option
// vocabulary — the single translation Run and RunSuite share.
func (s *settings) engineOptions() []engine.Option {
	if s.partitions > 0 && !s.modeSet {
		s.mode = Parallel
	}
	eopts := []engine.Option{engine.WithMode(s.mode)}
	if s.partitions > 0 {
		eopts = append(eopts, engine.WithPartitions(s.partitions))
	}
	if s.batch > 0 {
		eopts = append(eopts, engine.WithBatchSize(s.batch))
	}
	if s.metrics != nil {
		eopts = append(eopts, engine.WithMetrics(s.metrics))
	}
	if s.journal != nil {
		eopts = append(eopts, engine.WithJournal(s.journal))
	}
	if s.profile {
		eopts = append(eopts, engine.WithPprofLabels())
	}
	if s.faultPlan != nil {
		eopts = append(eopts, engine.WithFaultPlan(s.faultPlan))
	}
	if s.retry.Enabled() {
		eopts = append(eopts, engine.WithRetry(s.retry))
	}
	return eopts
}

// RunSuite executes several workflows as one job: upstream closures that
// several workflows (or several branches of one workflow) share are
// detected by content — a fingerprint over each node's transformation
// structure and its bound source data — materialized exactly once each
// through a content-addressed cache, and every workflow runs as a residual
// graph over those shared intermediates. Each member's Targets and
// NodeRows are bit-identical to an individual Run at any suite-worker
// count, cache budget and partition count.
//
// RunSuite returns an error only when planning fails (an invalid graph or
// an unbound source). Execution failures are isolated per workflow in the
// result: a failing shared stage fails every workflow consuming it — each
// with the same error — and no others.
//
// WithSuiteWorkers, WithSharedCache and WithSharedSpill configure the
// suite; engine options (WithMode, WithPartitions, WithFaultPlan, …) apply
// to every stage and residual run; WithMetrics and WithJournal also
// receive the shared cache's activity.
func RunSuite(ctx context.Context, workflows []SuiteWorkflow, opts ...Option) (*SuiteResult, error) {
	s := newSettings(opts)
	cacheBytes := int64(-1)
	if s.cacheSet {
		cacheBytes = s.cacheBytes
	}
	return share.RunSuite(ctx, workflows, share.Options{
		Workers:    s.suiteWorkers,
		CacheBytes: cacheBytes,
		SpillDir:   s.spillDir,
		Engine:     s.engineOptions(),
		Journal:    s.journal,
		Metrics:    s.metrics,
	})
}

// VerifyEmpirical executes both workflows on the same bound input and
// reports whether every target received the same record multiset — the
// paper's empirical equivalence oracle (§2.2). The returned string
// describes the first divergence, if any.
func VerifyEmpirical(g1, g2 *Graph, bindings map[string]Recordset) (bool, string, error) {
	return equiv.VerifyEmpirical(g1, g2, bindings)
}
