// Package etl is the public facade of the ETL workflow optimizer. It
// bundles the pieces an embedding application needs — building or parsing
// a workflow graph, optimizing it with the paper's state-space search
// (ES, HS, HS-Greedy), executing it over bound recordsets, and verifying
// that the optimized workflow is equivalent to the original — behind one
// import path, re-exporting the internal packages' types as aliases so
// values flow freely between the facade and any future exported
// subpackages.
//
// The two entry points are context-first:
//
//	res, err := etl.Optimize(ctx, g, etl.Options{})
//	run, err := etl.Run(ctx, res.Best, bindings)
//
// Cancelling the context aborts the optimizer at the next state-expansion
// boundary and the engine at the next node or batch boundary, returning
// ctx.Err().
package etl

import (
	"context"
	"fmt"

	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

// Re-exported types. These are aliases, not copies: a *etl.Graph is a
// *workflow.Graph, so graphs built here work with every part of the
// system and vice versa.
type (
	// Graph is a workflow: a DAG of recordset and activity nodes.
	Graph = workflow.Graph
	// NodeID identifies a node within a Graph.
	NodeID = workflow.NodeID
	// RecordsetRef declares a source or target recordset in a Graph.
	RecordsetRef = workflow.RecordsetRef
	// Activity is one transformation step (selection, function, join, …).
	Activity = workflow.Activity
	// Result reports an optimization run (best graph, costs, statistics).
	Result = core.Result
	// RunResult reports a workflow execution (target rows, node counts).
	RunResult = engine.RunResult
	// Recordset is the storage abstraction workflows read and load.
	Recordset = data.Recordset
	// MemoryRecordset is an in-memory Recordset, convenient for tests and
	// examples.
	MemoryRecordset = data.MemoryRecordset
	// Schema is an ordered attribute list.
	Schema = data.Schema
	// Record is one tuple; Rows is a slice of them.
	Record = data.Record
	// Rows is a multiset of records.
	Rows = data.Rows
	// Value is one typed attribute value.
	Value = data.Value
	// CostModel prices workflow states; the default is the paper's
	// row-count model.
	CostModel = cost.Model
	// Mode selects the engine's execution strategy.
	Mode = engine.Mode
	// EngineOption configures Run.
	EngineOption = engine.Option
	// MetricsRegistry collects observability series (counters, gauges,
	// histograms, spans) from the optimizer and the engine. Collection is
	// write-only: results are bit-identical with metrics on or off.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a MetricsRegistry,
	// serializable as JSON or Prometheus text.
	MetricsSnapshot = obs.Snapshot
)

// Execution modes for WithMode.
const (
	// Materialized evaluates nodes one at a time in topological order.
	Materialized = engine.Materialized
	// Pipelined streams records between concurrent node goroutines.
	Pipelined = engine.Pipelined
)

// Null is the SQL-style null Value.
var Null = data.Null

// Value constructors.
var (
	// NewInt wraps an int64 as a Value.
	NewInt = data.NewInt
	// NewFloat wraps a float64 as a Value.
	NewFloat = data.NewFloat
	// NewString wraps a string as a Value.
	NewString = data.NewString
	// NewBool wraps a bool as a Value.
	NewBool = data.NewBool
)

// Engine options.
var (
	// WithMode selects the execution mode (default Materialized).
	WithMode = engine.WithMode
	// WithBatchSize sets the pipelined mode's channel batch size.
	WithBatchSize = engine.WithBatchSize
	// WithMetrics attaches a metrics registry to Run; see Metrics.
	WithMetrics = engine.WithMetrics
)

// defaultMetrics is the package-level registry Metrics returns: the
// rendezvous point for applications that want one process-wide view of
// every Optimize and Run they route through it.
var defaultMetrics = obs.NewRegistry()

// Metrics returns the package's default metrics registry. Pass it to
// Optimize via Options.Metrics and to Run via WithMetrics(etl.Metrics()),
// then export it with Snapshot():
//
//	snap := etl.Metrics().Snapshot()
//	snap.WriteJSON(os.Stdout)       // or snap.WritePrometheus(w)
//
// Applications that want isolated collection build their own registry
// with NewMetricsRegistry instead.
func Metrics() *MetricsRegistry { return defaultMetrics }

// NewMetricsRegistry returns a fresh, empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewGraph returns an empty workflow graph.
func NewGraph() *Graph { return workflow.NewGraph() }

// NewMemoryRecordset returns an empty in-memory recordset.
func NewMemoryRecordset(name string, schema Schema) *MemoryRecordset {
	return data.NewMemoryRecordset(name, schema)
}

// Parse builds a Graph from the line-oriented workflow DSL (see
// internal/dsl: `recordset`, `activity` and `flow` directives).
func Parse(src string) (*Graph, error) { return dsl.Parse(src) }

// Serialize renders a Graph back into the DSL.
func Serialize(g *Graph) (string, error) { return dsl.Serialize(g) }

// Algorithm selects the optimization search.
type Algorithm string

// The three search algorithms of the paper (§4.2).
const (
	// ES is exhaustive search: the global optimum, exponential state
	// space — bound it with Options.MaxStates.
	ES Algorithm = "es"
	// HS is the heuristic search of Fig. 7 — near-optimal at a fraction
	// of ES's cost; the default.
	HS Algorithm = "hs"
	// HSGreedy replaces HS's per-group exploration with hill-climbing —
	// fastest, may miss improvements on large workflows.
	HSGreedy Algorithm = "hs-greedy"
)

// Options configures Optimize. The zero value asks for the heuristic
// search with semi-incremental costing and the package defaults — the
// configuration the paper's experiments recommend.
type Options struct {
	// Algorithm selects the search; empty means HS.
	Algorithm Algorithm
	// Model prices states; nil means the paper's row-count model.
	Model CostModel
	// MaxStates bounds generated states (0 = package default).
	MaxStates int
	// GroupCap bounds HS's per-local-group exploration (0 = default).
	GroupCap int
	// Workers sets the search's parallelism; 0 means GOMAXPROCS, 1 is
	// fully sequential. Results are identical for every value.
	Workers int
	// MergeConstraints lists activity pairs that must move as one unit
	// (HS pre-processing; split again afterwards).
	MergeConstraints [][2]NodeID
	// FullCostEval disables the semi-incremental cost evaluation and
	// recomputes every state's cost from scratch. Results are identical;
	// incremental is faster.
	FullCostEval bool
	// Metrics, when non-nil, collects the search's observability series
	// (states generated/visited/deduped, per-transition-kind counts, best
	// cost, worker utilization). etl.Metrics() supplies the package-wide
	// default registry. Collection never affects results.
	Metrics *MetricsRegistry
}

// Optimize searches for the cheapest workflow equivalent to g and returns
// the best state found. A cancelled ctx aborts with ctx.Err().
func Optimize(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	copts := core.Options{
		Model:            opts.Model,
		MaxStates:        opts.MaxStates,
		GroupCap:         opts.GroupCap,
		Workers:          opts.Workers,
		MergeConstraints: opts.MergeConstraints,
		IncrementalCost:  !opts.FullCostEval,
		Metrics:          opts.Metrics,
	}
	switch opts.Algorithm {
	case ES:
		return core.Exhaustive(ctx, g, copts)
	case HS, "":
		return core.Heuristic(ctx, g, copts)
	case HSGreedy:
		return core.HSGreedy(ctx, g, copts)
	default:
		return nil, fmt.Errorf("etl: unknown algorithm %q", opts.Algorithm)
	}
}

// Run executes the workflow against the bound recordsets: every source
// must be bound by name; bound targets receive the loaded rows. A
// cancelled ctx aborts with ctx.Err().
func Run(ctx context.Context, g *Graph, bindings map[string]Recordset, opts ...EngineOption) (*RunResult, error) {
	return engine.New(bindings, opts...).Run(ctx, g)
}

// VerifyEmpirical executes both workflows on the same bound input and
// reports whether every target received the same record multiset — the
// paper's empirical equivalence oracle (§2.2). The returned string
// describes the first divergence, if any.
func VerifyEmpirical(g1, g2 *Graph, bindings map[string]Recordset) (bool, string, error) {
	return equiv.VerifyEmpirical(g1, g2, bindings)
}
