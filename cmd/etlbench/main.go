// Command etlbench regenerates the paper's evaluation: Table 1 (quality of
// solution), Table 2 (visited states / improvement / execution time) and
// the §4.2 prose claims, over a synthetic reproduction of the 40-workflow
// suite. It also regenerates the Fig. 4 cost arithmetic on demand.
//
// Usage:
//
//	etlbench                 # full suite (40 workflows), both tables + claims
//	etlbench -counts 4,3,3   # a quicker suite
//	etlbench -fig4           # only the Fig. 4 cost cases
//	etlbench -verify         # also validate every optimized workflow on data
//	etlbench -expand FILE    # incremental-vs-full-clone expansion baseline
//	etlbench -engine FILE    # partition-parallel engine baseline (BENCH_engine.json)
//	etlbench -engine FILE -faults 42:0.05
//	                         # same baseline under deterministic chaos: faults
//	                         # injected into the parallel runs, retried, and
//	                         # still required bit-identical to materialized
//	etlbench -shared FILE    # shared-work suite scheduler baseline
//	                         # (BENCH_shared.json): shared-prefix suites run
//	                         # independently and as one RunSuite job, required
//	                         # bit-identical, savings and speedup recorded
//	etlbench -compare OLD NEW [-tolerance 0.2]
//	                         # perf-regression gate over two baseline reports
//	                         # (BENCH_expand.json / BENCH_engine.json schema):
//	                         # exits nonzero when NEW's throughput falls more
//	                         # than the tolerance below OLD, or when NEW lost
//	                         # bit-identity
//
// Flag vocabulary (shared across etlrun, etlopt and etlbench): -workers
// controls optimizer search parallelism, while -partitions controls engine
// data parallelism — the counts each recordset is split into by the
// partition-parallel engine (-engine, and Table 2's exec columns).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"etlopt/internal/analysis"
	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/dsl"
	"etlopt/internal/experiments"
	"etlopt/internal/generator"
	"etlopt/internal/obs"
	"etlopt/internal/stats"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etlbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		counts    = flag.String("counts", "14,13,13", "workflows per category: small,medium,large")
		seed      = flag.Int64("seed", 20050405, "base random seed (ICDE 2005 started April 5)")
		esBudget  = flag.Int("esbudget", 60_000, "ES state budget per workflow")
		hsBudget  = flag.Int("hsbudget", 30_000, "HS state budget per workflow")
		workers   = flag.Int("workers", 0, "optimizer search parallelism (0 = all CPUs, 1 = sequential; same results either way)")
		partsFlag = flag.String("partitions", "", "engine data parallelism: comma-separated partition counts (e.g. 1,2,4,8); adds parallel exec columns to Table 2 and sets the -engine measurement points")
		dataRows  = flag.Int("datarows", 0, "records generated per source for -engine (0 = 8000)")
		engineOut = flag.String("engine", "", "run the partition-parallel engine baseline over the suite, write the JSON report here, and exit")
		sharedOut = flag.String("shared", "", "run the shared-work suite scheduler baseline (-counts suites per category of -suitesize shared-prefix workflows), write the JSON report here, and exit")
		suiteSize = flag.Int("suitesize", 3, "workflows per shared suite for -shared")
		faults    = flag.String("faults", "", "arm deterministic fault injection on -engine's parallel runs as seed:rate (e.g. 42:0.05); transient faults are retried and bit-identity is still required")
		verify    = flag.Bool("verify", false, "validate every optimized workflow on generated data")
		fig4      = flag.Bool("fig4", false, "print only the Fig. 4 cost cases")
		ablations = flag.Bool("ablations", false, "run the DESIGN.md ablation studies and exit")
		expand    = flag.String("expand", "", "run the incremental-vs-full-clone expansion baseline over the suite, write the JSON report here, and exit")
		lintOnly  = flag.Bool("lint", false, "run the design checks over the generated suite and exit (warnings exit nonzero)")
		quiet     = flag.Bool("quiet", false, "suppress per-workflow progress")
		metrics   = flag.String("metrics", "", "write a JSON metrics snapshot of the whole suite here (auditable with etlvet metrics)")
		debugAddr = flag.String("debug-addr", "", "serve a live status page, /metrics (Prometheus) and /metrics.json on this address during the run")
		journal   = flag.String("journal", "", "record a structured run journal of the whole suite here (JSONL flight recorder, auditable with etlvet obs)")
		traceOut  = flag.String("trace-out", "", "write the suite's span tree as Chrome/Perfetto trace-event JSON here")
		compare   = flag.String("compare", "", "regression gate: compare the OLD baseline report named here against the NEW report given as the positional argument")
		tolerance = flag.Float64("tolerance", 0.2, "allowed fractional throughput drop for -compare (0.2 = 20%)")
	)
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			return fmt.Errorf("-compare OLD needs exactly one positional argument: the NEW report (got %d)", flag.NArg())
		}
		return compareReports(*compare, flag.Arg(0), *tolerance)
	}
	if *fig4 {
		printFig4()
		return nil
	}
	if *ablations {
		return runAblations(*seed)
	}

	parts := strings.Split(*counts, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-counts wants three comma-separated numbers, got %q", *counts)
	}
	countMap := map[generator.Category]int{}
	for i, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		n, err := strconv.Atoi(strings.TrimSpace(parts[i]))
		if err != nil {
			return fmt.Errorf("-counts: %v", err)
		}
		countMap[cat] = n
	}

	partitions, err := parsePartitions(*partsFlag)
	if err != nil {
		return err
	}

	if *lintOnly {
		return lintSuite(countMap, *seed)
	}
	if *expand != "" {
		return runExpand(*expand, countMap, *seed, *hsBudget, !*quiet)
	}
	if *engineOut != "" {
		return runEngine(*engineOut, countMap, *seed, partitions, *dataRows, *faults, !*quiet)
	}
	if *sharedOut != "" {
		return runShared(*sharedOut, countMap, *seed, *suiteSize, *dataRows, *workers, !*quiet)
	}
	if *faults != "" {
		return fmt.Errorf("-faults only applies to the -engine baseline")
	}

	cfg := experiments.SuiteConfig{
		Seed:       *seed,
		Counts:     countMap,
		ESBudget:   *esBudget,
		HSBudget:   *hsBudget,
		Workers:    *workers,
		Partitions: partitions,
		Verify:     *verify,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	if *metrics != "" || *debugAddr != "" || *traceOut != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	var jnl *obs.Journal
	if *journal != "" {
		jnl, err = obs.NewJournalFile(*journal, cfg.Metrics)
		if err != nil {
			return err
		}
		defer jnl.Close()
		cfg.Journal = jnl
	}
	if *debugAddr != "" {
		bound, stopSrv, err := obs.Serve(*debugAddr, cfg.Metrics)
		if err != nil {
			return err
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/, /metrics, /metrics.json)\n", bound)
	}
	results, err := experiments.RunSuite(context.Background(), cfg)
	if err != nil {
		return err
	}
	if *metrics != "" {
		if err := cfg.Metrics.Snapshot().WriteJSONFile(*metrics); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics snapshot written to %s\n", *metrics)
	}
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "etlbench: journal:", err)
		}
		fmt.Fprintf(os.Stderr, "run journal written to %s (%d events, %d dropped)\n",
			*journal, jnl.Written(), jnl.Dropped())
	}
	if *traceOut != "" {
		if err := cfg.Metrics.Snapshot().WriteTraceEventsFile(*traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace events written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}

	fmt.Println("Table 1: quality of solution (avg % of best-ES improvement)")
	fmt.Println(experiments.Table1(results))
	fmt.Println("Table 2: execution time, number of visited states and improvement wrt the initial state")
	fmt.Println(experiments.Table2(results))
	fmt.Println("§4.2 claims:")
	fmt.Println(experiments.Claims(results))
	return nil
}

// runExpand records the incremental-expansion baseline: the HS search over
// the whole suite in the shipped incremental mode and the full-clone
// baseline at Workers ∈ {1, 4}. Every scenario's four runs must agree
// bit-for-bit (best cost, best signature, visited/generated counts) — the
// determinism contract of DESIGN.md §7 — and the aggregate throughput of
// the two modes lands in the JSON report (BENCH_expand.json in CI).
func runExpand(path string, counts map[generator.Category]int, seed int64, hsBudget int, progress bool) error {
	cfg := experiments.SuiteConfig{Seed: seed, Counts: counts, HSBudget: hsBudget}
	if progress {
		cfg.Progress = os.Stderr
	}
	rep, err := experiments.ExpandBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	rep.Summary(os.Stdout)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "expand baseline written to %s\n", path)
	return nil
}

// parsePartitions parses the -partitions flag ("" means unset).
func parsePartitions(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("-partitions wants comma-separated counts >= 1, got %q", s)
		}
		out = append(out, p)
	}
	return out, nil
}

// runEngine records the partition-parallel engine baseline: the full suite
// with scaled-up data executed materialized and at each partition count,
// every parallel run verified bit-identical, with the wall clocks landing
// in the JSON report (BENCH_engine.json in CI).
func runEngine(path string, counts map[generator.Category]int, seed int64, partitions []int, dataRows int, faultSpec string, progress bool) error {
	cfg := experiments.SuiteConfig{
		Seed: seed, Counts: counts, Partitions: partitions, DataRows: dataRows,
		FaultSpec: faultSpec,
	}
	if progress {
		cfg.Progress = os.Stderr
	}
	rep, err := experiments.EngineBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	rep.Summary(os.Stdout)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "engine baseline written to %s\n", path)
	return nil
}

// runShared records the shared-work suite scheduler baseline: shared-prefix
// suites executed independently and as one RunSuite job, every member
// verified bit-identical between the two, with node/byte savings and the
// wall-clock speedup landing in the JSON report (BENCH_shared.json in CI).
func runShared(path string, counts map[generator.Category]int, seed int64, suiteSize, dataRows, workers int, progress bool) error {
	cfg := experiments.SharedConfig{
		Seed: seed, Counts: counts, SuiteSize: suiteSize,
		DataRows: dataRows, Workers: workers,
	}
	if progress {
		cfg.Progress = os.Stderr
	}
	rep, err := experiments.SharedBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	rep.Summary(os.Stdout)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "shared-work baseline written to %s\n", path)
	return nil
}

// benchReport is the union of the BENCH_expand.json, BENCH_engine.json and
// BENCH_shared.json schemas, reduced to the fields the regression gate
// reads. Metrics absent from a report decode to zero and are skipped.
type benchReport struct {
	AllIdentical            *bool     `json:"all_identical"`
	IncrementalStatesPerSec float64   `json:"incremental_states_per_sec"`
	FullCloneStatesPerSec   float64   `json:"full_clone_states_per_sec"`
	MaterializedRowsPerSec  float64   `json:"materialized_rows_per_sec"`
	Partitions              []int     `json:"partitions"`
	ParallelRowsPerSec      []float64 `json:"parallel_rows_per_sec"`
	SharedRowsPerSec        float64   `json:"shared_rows_per_sec"`
	SharedSpeedup           float64   `json:"shared_speedup"`
	RecomputationSavedBytes float64   `json:"recomputation_saved_bytes"`
}

func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compareReports is the perf-regression gate: it reads two baseline
// reports sharing a schema (BENCH_expand.json or BENCH_engine.json),
// prints a per-metric comparison, and fails when any throughput metric
// that was nonzero in OLD drops more than the tolerance in NEW, or when
// NEW lost the bit-identity the baselines assert. Parallel throughput
// entries are matched by partition count, so the two reports may
// measure different partition sets.
func compareReports(oldPath, newPath string, tol float64) error {
	if tol < 0 || tol >= 1 {
		return fmt.Errorf("-tolerance wants a fraction in [0, 1), got %v", tol)
	}
	old, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	cur, err := readBenchReport(newPath)
	if err != nil {
		return err
	}

	type metric struct {
		name     string
		old, cur float64
	}
	ms := []metric{
		{"incremental_states_per_sec", old.IncrementalStatesPerSec, cur.IncrementalStatesPerSec},
		{"full_clone_states_per_sec", old.FullCloneStatesPerSec, cur.FullCloneStatesPerSec},
		{"materialized_rows_per_sec", old.MaterializedRowsPerSec, cur.MaterializedRowsPerSec},
		{"shared_rows_per_sec", old.SharedRowsPerSec, cur.SharedRowsPerSec},
		{"shared_speedup", old.SharedSpeedup, cur.SharedSpeedup},
		{"recomputation_saved_bytes", old.RecomputationSavedBytes, cur.RecomputationSavedBytes},
	}
	curParallel := map[int]float64{}
	for i, p := range cur.Partitions {
		if i < len(cur.ParallelRowsPerSec) {
			curParallel[p] = cur.ParallelRowsPerSec[i]
		}
	}
	for i, p := range old.Partitions {
		if i >= len(old.ParallelRowsPerSec) {
			break
		}
		if v, ok := curParallel[p]; ok {
			ms = append(ms, metric{fmt.Sprintf("parallel_rows_per_sec[p=%d]", p), old.ParallelRowsPerSec[i], v})
		}
	}

	var regressions []string
	t := stats.NewTable("metric", "old", "new", "change", "verdict")
	compared := 0
	for _, m := range ms {
		if m.old <= 0 {
			continue
		}
		compared++
		change := (m.cur - m.old) / m.old
		verdict := "ok"
		if m.cur < m.old*(1-tol) {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s fell %.1f%% (%.0f -> %.0f, tolerance %.0f%%)",
					m.name, -100*change, m.old, m.cur, 100*tol))
		}
		t.AddRow(m.name, fmt.Sprintf("%.0f", m.old), fmt.Sprintf("%.0f", m.cur),
			fmt.Sprintf("%+.1f%%", 100*change), verdict)
	}
	if compared == 0 {
		return fmt.Errorf("%s and %s share no nonzero throughput metrics — not the same report kind?", oldPath, newPath)
	}
	fmt.Print(t.String())
	if cur.AllIdentical != nil && !*cur.AllIdentical {
		regressions = append(regressions, "NEW report lost bit-identity (all_identical=false)")
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("no regressions: %d metric(s) within %.0f%% of %s\n", compared, 100*tol, oldPath)
	return nil
}

// lintSuite runs the workflow design checks over every generated suite
// workflow, sharing the same finding output and exit-code semantics as
// `etlopt -lint` and `etlrun -lint`: warnings exit nonzero, advice does
// not.
func lintSuite(counts map[generator.Category]int, seed int64) error {
	warnings := 0
	for _, cat := range []generator.Category{generator.Small, generator.Medium, generator.Large} {
		n := counts[cat]
		if n == 0 {
			continue
		}
		scenarios, err := generator.Suite(cat, n, seed+int64(cat)*104729)
		if err != nil {
			return err
		}
		for i, sc := range scenarios {
			fmt.Printf("%s #%02d:\n", cat, i+1)
			w, err := analysis.RunLint(os.Stdout, sc.Graph, dsl.NodeNames(sc.Graph))
			if err != nil {
				return fmt.Errorf("%s workflow %d: %w", cat, i+1, err)
			}
			warnings += w
		}
	}
	if warnings > 0 {
		return fmt.Errorf("%d warning(s)", warnings)
	}
	return nil
}

// printFig4 reproduces the Fig. 4 example: the cost of the original,
// distributed and factorized placements of a selection and surrogate-key
// assignment around a union, both with the paper's literal formulas
// (c1=56, c2=32, c3=24 at n=8) and under this library's cost model.
func printFig4() {
	const n = 8.0
	log2 := func(x float64) float64 {
		if x <= 1 {
			return 0
		}
		l := 0.0
		for v := x; v > 1; v /= 2 {
			l++
		}
		return l
	}
	fmt.Println("Fig. 4 paper arithmetic (n=8, σ sel 50%, cost(SK)=n·log2 n, cost(σ)=n):")
	fmt.Printf("  c1 = 2n·log2(n) + n            = %.0f (paper: 56)\n", 2*n*log2(n)+n)
	fmt.Printf("  c2 = 2(n + (n/2)·log2(n/2))    = %.0f (paper: 32)\n", 2*(n+(n/2)*log2(n/2)))
	fmt.Printf("  c3 = 2n + (n/2)·log2(n/2)      = %.0f (paper: 24)\n", 2*n+(n/2)*log2(n/2))

	fmt.Println("\nThis library's RowModel on the three Fig. 4 workflows:")
	t := stats.NewTable("case", "total cost")
	for _, c := range []struct {
		name string
		kind templates.Fig4Case
	}{
		{"original (SK per branch, σ once)", templates.Fig4Original},
		{"distributed (σ pushed into both branches)", templates.Fig4Distributed},
		{"factorized (one SK after the union)", templates.Fig4Factorized},
	} {
		g := templates.Fig4Workflow(c.kind, n)
		costing, err := cost.Evaluate(g, cost.RowModel{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig4:", err)
			return
		}
		t.AddRow(c.name, costing.Total)
	}
	fmt.Print(t.String())
	fmt.Println("Both rewrites price below the original, matching the figure's conclusion that DIS and FAC reduce state cost.")
}

// runAblations executes the DESIGN.md ablation studies (A1-A4) on fixed
// seeds and prints one table per study. BenchmarkAblation* provide the
// same measurements as testing.B benchmarks; this command trades
// statistical rigor for a readable one-shot report.
func runAblations(seed int64) error {
	fmt.Println("A1 — signature dedup (ES on Fig. 1, 5000-state budget)")
	t := stats.NewTable("variant", "generated", "distinct", "terminated", "improvement %")
	for _, v := range []struct {
		name    string
		disable bool
	}{{"with dedup", false}, {"without dedup", true}} {
		res, err := core.Exhaustive(context.Background(), templates.Fig1Workflow(), core.Options{
			MaxStates: 5000, IncrementalCost: true, DisableDedup: v.disable,
		})
		if err != nil {
			return err
		}
		t.AddRow(v.name, res.Generated, res.Visited, fmt.Sprint(res.Terminated),
			fmt.Sprintf("%.1f", res.Improvement()))
	}
	fmt.Println(t)

	sc, err := generator.Generate(generator.CategoryConfig(generator.Medium, seed))
	if err != nil {
		return err
	}

	fmt.Println("A2 — semi-incremental costing (HS, medium workflow, 4000-state budget)")
	t = stats.NewTable("variant", "time", "improvement %")
	for _, v := range []struct {
		name string
		inc  bool
	}{{"incremental", true}, {"full recomputation", false}} {
		start := time.Now()
		res, err := core.Heuristic(context.Background(), sc.Graph, core.Options{MaxStates: 4000, IncrementalCost: v.inc})
		if err != nil {
			return err
		}
		t.AddRow(v.name, time.Since(start).Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", res.Improvement()))
	}
	fmt.Println(t)

	fmt.Println("A3 — HS Phase I (medium workflow, 6000-state budget)")
	t = stats.NewTable("variant", "improvement %", "visited")
	for _, v := range []struct {
		name    string
		disable bool
	}{{"with Phase I", false}, {"without Phase I", true}} {
		res, err := core.Heuristic(context.Background(), sc.Graph, core.Options{
			MaxStates: 6000, IncrementalCost: true, DisablePhaseI: v.disable,
		})
		if err != nil {
			return err
		}
		t.AddRow(v.name, fmt.Sprintf("%.1f", res.Improvement()), res.Visited)
	}
	fmt.Println(t)

	fmt.Println("A4 — merge constraints (HS on Fig. 1; $2€ and A2E packaged)")
	g := templates.Fig1Workflow()
	var d2e, a2e workflow.NodeID
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Op == workflow.OpFunc && a.Sem.DropArgs {
			d2e = id
		}
		if a.Sem.Op == workflow.OpFunc && a.InPlace() {
			a2e = id
		}
	}
	t = stats.NewTable("variant", "improvement %", "visited")
	for _, v := range []struct {
		name  string
		pairs [][2]workflow.NodeID
	}{
		{"unconstrained", nil},
		{"merge constrained", [][2]workflow.NodeID{{d2e, a2e}}},
	} {
		res, err := core.Heuristic(context.Background(), g, core.Options{IncrementalCost: true, MergeConstraints: v.pairs})
		if err != nil {
			return err
		}
		t.AddRow(v.name, fmt.Sprintf("%.1f", res.Improvement()), res.Visited)
	}
	fmt.Println(t)
	fmt.Println("(A5, engine modes, needs data volume: see BenchmarkEngineModes.)")
	return nil
}
