package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParsePartitions(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"1,2,4,8", []int{1, 2, 4, 8}, true},
		{" 2 , 4 ", []int{2, 4}, true},
		{"0", nil, false},
		{"2,x", nil, false},
		{"-1", nil, false},
	} {
		got, err := parsePartitions(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parsePartitions(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parsePartitions(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// writeReport serializes a benchReport to a temp file and returns its path.
func writeReport(t *testing.T, name string, r benchReport) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func boolp(b bool) *bool { return &b }

func engineReport(scale float64) benchReport {
	return benchReport{
		AllIdentical:           boolp(true),
		MaterializedRowsPerSec: 100_000 * scale,
		Partitions:             []int{1, 2, 4},
		ParallelRowsPerSec:     []float64{90_000 * scale, 160_000 * scale, 250_000 * scale},
	}
}

func TestReadBenchReportErrors(t *testing.T) {
	if _, err := readBenchReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchReport(bad); err == nil || !strings.Contains(err.Error(), bad) {
		t.Errorf("malformed report error should name the file, got %v", err)
	}
}

func TestCompareReports(t *testing.T) {
	base := writeReport(t, "base.json", engineReport(1))

	t.Run("self-compare passes", func(t *testing.T) {
		if err := compareReports(base, base, 0.2); err != nil {
			t.Errorf("identical reports must pass: %v", err)
		}
	})

	t.Run("within tolerance passes", func(t *testing.T) {
		cur := writeReport(t, "cur.json", engineReport(0.9))
		if err := compareReports(base, cur, 0.2); err != nil {
			t.Errorf("-10%% inside a 20%% tolerance must pass: %v", err)
		}
	})

	t.Run("regression fails", func(t *testing.T) {
		cur := writeReport(t, "cur.json", engineReport(0.5))
		err := compareReports(base, cur, 0.2)
		if err == nil {
			t.Fatal("-50% must fail a 20% tolerance")
		}
		for _, want := range []string{"materialized_rows_per_sec", "parallel_rows_per_sec[p=4]"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("regression list missing %s: %v", want, err)
			}
		}
	})

	t.Run("improvement passes", func(t *testing.T) {
		cur := writeReport(t, "cur.json", engineReport(2))
		if err := compareReports(base, cur, 0.2); err != nil {
			t.Errorf("a speedup is not a regression: %v", err)
		}
	})

	t.Run("lost bit-identity fails even when fast", func(t *testing.T) {
		r := engineReport(2)
		r.AllIdentical = boolp(false)
		cur := writeReport(t, "cur.json", r)
		err := compareReports(base, cur, 0.2)
		if err == nil || !strings.Contains(err.Error(), "bit-identity") {
			t.Errorf("all_identical=false must fail the gate, got %v", err)
		}
	})

	t.Run("partitions matched by count not index", func(t *testing.T) {
		r := engineReport(1)
		r.Partitions = []int{4, 2, 1}
		r.ParallelRowsPerSec = []float64{125_000, 160_000, 90_000}
		cur := writeReport(t, "cur.json", r)
		err := compareReports(base, cur, 0.2)
		if err == nil || !strings.Contains(err.Error(), "parallel_rows_per_sec[p=4]") {
			t.Errorf("p=4 halved under reordering must regress, got %v", err)
		}
	})

	t.Run("wrong report kind regresses to zero", func(t *testing.T) {
		// Comparing an engine baseline against an expand report zeroes
		// every engine metric — the gate reads that as a regression,
		// which is the right failure for a swapped file.
		expand := writeReport(t, "expand.json", benchReport{
			AllIdentical:            boolp(true),
			IncrementalStatesPerSec: 5000,
			FullCloneStatesPerSec:   1000,
		})
		err := compareReports(base, expand, 0.2)
		if err == nil || !strings.Contains(err.Error(), "materialized_rows_per_sec") {
			t.Errorf("engine vs expand must regress, got %v", err)
		}
		if err := compareReports(expand, expand, 0.2); err != nil {
			t.Errorf("expand self-compare must pass: %v", err)
		}
	})

	t.Run("no shared nonzero metrics error", func(t *testing.T) {
		// An old report whose only throughput data is at a partition
		// count the new report never ran shares nothing comparable.
		sparse := writeReport(t, "sparse.json", benchReport{
			Partitions:         []int{16},
			ParallelRowsPerSec: []float64{500_000},
		})
		err := compareReports(sparse, base, 0.2)
		if err == nil || !strings.Contains(err.Error(), "share no nonzero throughput metrics") {
			t.Errorf("want the no-shared-metrics error, got %v", err)
		}
	})

	t.Run("bad tolerance", func(t *testing.T) {
		for _, tol := range []float64{-0.1, 1, 1.5} {
			if err := compareReports(base, base, tol); err == nil {
				t.Errorf("tolerance %v must be rejected", tol)
			}
		}
	})

	t.Run("unreadable inputs", func(t *testing.T) {
		absent := filepath.Join(t.TempDir(), "absent.json")
		if err := compareReports(absent, base, 0.2); err == nil {
			t.Error("missing old report: want error")
		}
		if err := compareReports(base, absent, 0.2); err == nil {
			t.Error("missing new report: want error")
		}
	})
}
