package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"etlopt/internal/dsl"
	"etlopt/internal/templates"
)

// buildTool compiles this command into a temp dir once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "etlopt")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building etlopt: %v\n%s", err, out)
	}
	return bin
}

func writeFig1(t *testing.T) string {
	t.Helper()
	text, err := dsl.Serialize(templates.Fig1Workflow())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig1.etl")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIOptimizeFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	in := writeFig1(t)
	out := filepath.Join(t.TempDir(), "opt.etl")

	for _, algo := range []string{"es", "hs", "greedy"} {
		cmd := exec.Command(bin, "-in", in, "-algo", algo, "-maxstates", "20000", "-out", out)
		stdout, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", algo, err, stdout)
		}
		text := string(stdout)
		for _, want := range []string{"initial cost:", "optimized cost:", "improvement:", "visited states:"} {
			if !strings.Contains(text, want) {
				t.Errorf("%s output missing %q:\n%s", algo, want, text)
			}
		}
		// The optimized file must parse and be equivalent-checkable.
		optText, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dsl.Parse(string(optText)); err != nil {
			t.Errorf("%s: optimized output does not parse: %v", algo, err)
		}
	}
}

func TestCLIVerboseAndErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	in := writeFig1(t)

	out, err := exec.Command(bin, "-in", in, "-algo", "hs", "-verbose").CombinedOutput()
	if err != nil {
		t.Fatalf("verbose run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "per-activity costs") {
		t.Errorf("verbose output missing costing detail:\n%s", out)
	}

	// Unknown algorithm and missing input must fail with nonzero status.
	if err := exec.Command(bin, "-in", in, "-algo", "magic").Run(); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if err := exec.Command(bin, "-in", "/nonexistent.etl").Run(); err == nil {
		t.Error("missing input file should fail")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("missing -in should fail")
	}
}

func TestCLIStdin(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	text, err := dsl.Serialize(templates.Fig1Workflow())
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-in", "-", "-algo", "greedy")
	cmd.Stdin = strings.NewReader(text)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("stdin run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "HS-Greedy") {
		t.Errorf("unexpected output:\n%s", out)
	}
}
