package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLILint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	// A workflow with an unguarded surrogate key: lint fails with a
	// warning.
	src := `
recordset S source rows=100 schema=K,V
recordset T target schema=V,SK
activity sk sk key=K out=SK lookup=L sel=1
flow S -> sk -> T
`
	path := filepath.Join(t.TempDir(), "wf.etl")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-in", path, "-lint").CombinedOutput()
	if err == nil {
		t.Errorf("lint with warnings should exit nonzero:\n%s", out)
	}
	if !strings.Contains(string(out), "unguarded-surrogate-key") {
		t.Errorf("missing finding:\n%s", out)
	}

	// The clean Fig. 1 lints without warnings.
	clean := writeFig1(t)
	out, err = exec.Command(bin, "-in", clean, "-lint").CombinedOutput()
	if err != nil {
		t.Errorf("clean workflow lint failed: %v\n%s", err, out)
	}
}
