// Command etlopt optimizes an ETL workflow definition: it parses a
// workflow file, runs one of the paper's three search algorithms (ES, HS,
// HS-Greedy), reports the cost improvement, and optionally writes the
// optimized workflow back out.
//
// Usage:
//
//	etlopt -in workflow.etl [-algo hs|greedy|es] [-maxstates N]
//	       [-workers N] [-timeout 30s] [-out optimized.etl] [-verbose]
//	       [-lint] [-trace trace.json] [-metrics snap.json]
//	       [-journal run.jsonl] [-trace-out trace-events.json]
//	       [-cpuprofile cpu.pprof]
//	       [-debug-addr localhost:6060] [-progress 1s]
//
// An interrupt (Ctrl-C) cancels the search and exits with an error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"time"

	"etlopt/internal/analysis"
	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/dsl"
	"etlopt/internal/equiv"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etlopt:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in        = flag.String("in", "", "workflow definition file ('-' for stdin)")
		algo      = flag.String("algo", "hs", "search algorithm: es, hs or greedy")
		maxStates = flag.Int("maxstates", 0, "state generation budget (0 = default)")
		workers   = flag.Int("workers", 0, "search parallelism (0 = all CPUs, 1 = sequential; same result either way)")
		timeout   = flag.Duration("timeout", 0, "abort the search after this long (0 = none)")
		out       = flag.String("out", "", "write the optimized workflow definition here")
		verbose   = flag.Bool("verbose", false, "print both workflow graphs")
		lintOnly  = flag.Bool("lint", false, "run the design checks and exit (warnings exit nonzero)")
		dot       = flag.Bool("dot", false, "print the optimized workflow in Graphviz dot syntax")
		tracePath = flag.String("trace", "", "record the transition trace here (JSON, auditable with etlvet trace)")
		metrics   = flag.String("metrics", "", "write a JSON metrics snapshot here after the search (auditable with etlvet metrics)")
		debugAddr = flag.String("debug-addr", "", "serve a live status page, /metrics (Prometheus) and /metrics.json on this address during the run")
		progress  = flag.Duration("progress", 0, "print a search progress line to stderr at this interval (e.g. 1s; 0 = off)")
		journal   = flag.String("journal", "", "record a structured run journal (JSONL flight recorder, auditable with etlvet obs) here")
		traceOut  = flag.String("trace-out", "", "write the run's span tree as Chrome/Perfetto trace-event JSON here")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile here; search workers are labeled (etl=search, etl_worker=N)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		return fmt.Errorf("missing -in")
	}

	var src []byte
	var err error
	if *in == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*in)
	}
	if err != nil {
		return err
	}
	g, err := dsl.Parse(string(src))
	if err != nil {
		return err
	}

	if *lintOnly {
		warnings, err := analysis.RunLint(os.Stdout, g, dsl.NodeNames(g))
		if err != nil {
			return err
		}
		if warnings > 0 {
			return fmt.Errorf("%d warning(s)", warnings)
		}
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var reg *obs.Registry
	if *metrics != "" || *debugAddr != "" || *progress > 0 || *traceOut != "" {
		reg = obs.NewRegistry()
	}
	var jnl *obs.Journal
	if *journal != "" {
		jnl, err = obs.NewJournalFile(*journal, reg)
		if err != nil {
			return err
		}
		// Close on every exit path; the success path closes first (the
		// second Close is a no-op) so write errors are reported.
		defer jnl.Close()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "etlopt: closing cpu profile:", err)
			}
		}()
	}
	if *debugAddr != "" {
		bound, stopSrv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/, /metrics, /metrics.json)\n", bound)
	}

	if *timeout > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, *timeout)
		defer cancelTimeout()
	}
	opts := core.Options{
		MaxStates:       *maxStates,
		Workers:         *workers,
		IncrementalCost: true,
		Trace:           *tracePath != "",
		Metrics:         reg,
		Journal:         jnl,
		PprofLabels:     *cpuProf != "",
	}
	if *progress > 0 {
		opts.Progress = os.Stderr
		opts.ProgressInterval = *progress
	}
	var res *core.Result
	switch *algo {
	case "es":
		res, err = core.Exhaustive(ctx, g, opts)
	case "hs":
		res, err = core.Heuristic(ctx, g, opts)
	case "greedy":
		res, err = core.HSGreedy(ctx, g, opts)
	default:
		return fmt.Errorf("unknown algorithm %q (want es, hs or greedy)", *algo)
	}
	if err != nil {
		return err
	}

	report(os.Stdout, g, res, *verbose)

	if equalOK, why, err := equiv.Equivalent(g, res.Best); err != nil {
		return err
	} else if !equalOK {
		return fmt.Errorf("internal error: optimized workflow not equivalent: %s", why)
	}

	if *tracePath != "" {
		t, err := analysis.NewTrace(res, g, cost.RowModel{})
		if err != nil {
			return err
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := t.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("transition trace written to %s (%d steps)\n", *tracePath, len(t.Steps))
	}

	if *metrics != "" {
		if err := reg.Snapshot().WriteJSONFile(*metrics); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metrics)
	}

	if jnl != nil {
		// Journal write failures are non-fatal by design — the search
		// already succeeded — but a truncated journal deserves a warning.
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "etlopt: journal:", err)
		}
		fmt.Printf("run journal written to %s (%d events, %d dropped)\n",
			*journal, jnl.Written(), jnl.Dropped())
	}
	if *traceOut != "" {
		if err := reg.Snapshot().WriteTraceEventsFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("trace events written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}

	if *dot {
		fmt.Print(res.Best.DOT(fmt.Sprintf("%s (%.1f%% improvement)", res.Algorithm, res.Improvement())))
	}

	if *out != "" {
		text, err := dsl.Serialize(res.Best)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("optimized workflow written to %s\n", *out)
	}
	return nil
}

func report(w io.Writer, g0 *workflow.Graph, res *core.Result, verbose bool) {
	fmt.Fprintf(w, "algorithm:           %s\n", res.Algorithm)
	fmt.Fprintf(w, "initial signature:   %s\n", g0.Signature())
	fmt.Fprintf(w, "initial cost:        %.1f\n", res.InitialCost)
	fmt.Fprintf(w, "optimized signature: %s\n", res.Best.Signature())
	fmt.Fprintf(w, "optimized cost:      %.1f\n", res.BestCost)
	fmt.Fprintf(w, "improvement:         %.1f%%\n", res.Improvement())
	fmt.Fprintf(w, "visited states:      %d\n", res.Visited)
	fmt.Fprintf(w, "elapsed:             %v\n", res.Elapsed.Round(time.Millisecond))
	if !res.Terminated {
		fmt.Fprintln(w, "note: the search budget expired before the space closed")
	}
	if verbose {
		fmt.Fprintln(w, "\ninitial workflow:")
		fmt.Fprint(w, g0.String())
		fmt.Fprintln(w, "\noptimized workflow:")
		fmt.Fprint(w, res.Best.String())
		printCosting(w, g0, "initial")
		printCosting(w, res.Best, "optimized")
	}
}

func printCosting(w io.Writer, g *workflow.Graph, label string) {
	c, err := cost.Evaluate(g, cost.RowModel{})
	if err != nil {
		return
	}
	fmt.Fprintf(w, "\n%s per-activity costs:\n", label)
	order, err := g.TopoSort()
	if err != nil {
		return
	}
	for _, id := range order {
		n := g.Node(id)
		if n.Kind != workflow.KindActivity {
			continue
		}
		fmt.Fprintf(w, "  %3d %-35s cost %12.1f  out-rows %12.1f\n",
			id, n.Label(), c.Costs[id], c.Cards[id])
	}
}
