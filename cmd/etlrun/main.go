// Command etlrun executes an ETL workflow definition against CSV record
// files: every source recordset, surrogate-key lookup and key set named by
// the workflow is bound to <data-dir>/<name>.csv, and target recordsets
// are written to <data-dir>/<name>.csv as well. Optionally the workflow is
// optimized before running, executed through the pipelined engine, and
// checkpointed so an interrupted load resumes instead of restarting.
//
// Usage:
//
//	etlrun -in workflow.etl -data ./data [-optimize hs|greedy|es] [-workers N]
//	       [-mode materialized|pipelined|parallel] [-partitions P]
//	       [-checkpoint ./stage] [-faults SEED:RATE] [-retries N] [-impact NODE]
//	       [-metrics snap.json] [-journal run.jsonl]
//	       [-trace-out trace-events.json] [-cpuprofile cpu.pprof]
//	       [-debug-addr localhost:6060] [-progress 1s]
//
// Passing several workflow files (positionally, or one via -in plus the
// rest positionally) switches to suite mode: the workflows execute as one
// job through the shared-work scheduler, which detects upstream closures
// the workflows have in common and computes each exactly once through a
// content-addressed intermediate-result cache. Each workflow binds its
// recordsets under <data-dir>/<workflow-basename>/ when that directory
// exists, and under <data-dir> directly otherwise:
//
//	etlrun -data ./data [-suite-workers N] [-shared-cache BYTES]
//	       [-shared-spill DIR] load1.etl load2.etl load3.etl
//
// Suite mode is execution-only: -optimize, -checkpoint, -impact, -lint,
// -explain and -calibrate apply to single-workflow runs.
//
// Flag vocabulary (shared across etlrun, etlopt and etlbench): -workers
// controls optimizer search parallelism (goroutines expanding the state
// space), while -partitions controls engine data parallelism (how many
// ways each recordset is split in -mode parallel). They are independent
// knobs for independent phases; -suite-workers is a third, bounding how
// many workflows and shared stages run concurrently in suite mode.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"etlopt/internal/analysis"
	"etlopt/internal/core"
	"etlopt/internal/cost"
	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/engine"
	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/workflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etlrun:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "", "workflow definition file")
		dataDir    = flag.String("data", ".", "directory of <name>.csv record files")
		optimize   = flag.String("optimize", "", "optimize first: es, hs or greedy")
		workers    = flag.Int("workers", 0, "optimizer search parallelism: worker goroutines for -optimize (0 = GOMAXPROCS)")
		mode       = flag.String("mode", "materialized", "execution mode: materialized, pipelined or parallel")
		partitions = flag.Int("partitions", 0, "engine data parallelism: partitions per recordset in -mode parallel (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "staging directory for resumable execution")
		impact     = flag.String("impact", "", "print the impact analysis of the named recordset and exit")
		lintOnly   = flag.Bool("lint", false, "run the design checks and exit (warnings exit nonzero)")
		explain    = flag.Bool("explain", false, "print estimated vs actual cardinalities after the run")
		calibrate  = flag.Bool("calibrate", false, "after running, calibrate selectivities from observation and report the re-optimized plan")
		metrics    = flag.String("metrics", "", "write a JSON metrics snapshot here after the run (auditable with etlvet metrics)")
		debugAddr  = flag.String("debug-addr", "", "serve a live status page, /metrics (Prometheus) and /metrics.json on this address during the run")
		progress   = flag.Duration("progress", 0, "print an optimizer progress line to stderr at this interval (e.g. 1s; 0 = off)")
		journal    = flag.String("journal", "", "record a structured run journal (JSONL flight recorder, auditable with etlvet obs) here")
		faults     = flag.String("faults", "", "arm deterministic fault injection as seed:rate (e.g. 42:0.05); transient faults are retried")
		retries    = flag.Int("retries", 6, "per-node attempt budget for retrying injected transient faults (with -faults)")
		traceOut   = flag.String("trace-out", "", "write the run's span tree as Chrome/Perfetto trace-event JSON here")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile here; search workers and engine partitions are labeled")
		suiteWork  = flag.Int("suite-workers", 0, "suite mode: concurrent shared stages and workflows (0 = GOMAXPROCS)")
		sharedCap  = flag.Int64("shared-cache", -1, "suite mode: shared intermediate cache budget in bytes (-1 = unbounded, 0 = no retention)")
		sharedSpil = flag.String("shared-spill", "", "suite mode: spill evicted shared intermediates to CSV files in this directory")
	)
	flag.Parse()
	files := flag.Args()
	if *in != "" {
		files = append([]string{*in}, files...)
	}
	if len(files) == 0 {
		flag.Usage()
		return fmt.Errorf("missing workflow file (-in or positional)")
	}
	if len(files) > 1 {
		for flagName, set := range map[string]bool{
			"-optimize": *optimize != "", "-checkpoint": *checkpoint != "",
			"-impact": *impact != "", "-lint": *lintOnly,
			"-explain": *explain, "-calibrate": *calibrate,
		} {
			if set {
				return fmt.Errorf("%s applies to single-workflow runs, not suites", flagName)
			}
		}
		return runSuite(files, suiteFlags{
			dataDir: *dataDir, mode: *mode, partitions: *partitions,
			workers: *suiteWork, cacheBytes: *sharedCap, spillDir: *sharedSpil,
			faults: *faults, retries: *retries,
			metrics: *metrics, journal: *journal,
		})
	}
	*in = files[0]
	// An interrupt cancels the optimizer and the engine; with -checkpoint,
	// completed nodes stay staged so a re-run resumes.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	src, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	g, err := dsl.Parse(string(src))
	if err != nil {
		return err
	}

	if *lintOnly {
		warnings, err := analysis.RunLint(os.Stdout, g, dsl.NodeNames(g))
		if err != nil {
			return err
		}
		if warnings > 0 {
			return fmt.Errorf("%d warning(s)", warnings)
		}
		return nil
	}

	if *impact != "" {
		return printImpact(g, *impact)
	}

	var reg *obs.Registry
	if *metrics != "" || *debugAddr != "" || *progress > 0 || *traceOut != "" {
		reg = obs.NewRegistry()
	}
	var jnl *obs.Journal
	if *journal != "" {
		jnl, err = obs.NewJournalFile(*journal, reg)
		if err != nil {
			return err
		}
		// Close on every exit path; the success path closes first (the
		// second Close is a no-op) so write errors are reported.
		defer jnl.Close()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "etlrun: closing cpu profile:", err)
			}
		}()
	}
	if *debugAddr != "" {
		bound, stopSrv, err := obs.Serve(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/, /metrics, /metrics.json)\n", bound)
	}

	if *optimize != "" {
		var res *core.Result
		opts := core.Options{
			IncrementalCost: true, MaxStates: 30_000, Metrics: reg, Workers: *workers,
			Journal: jnl, PprofLabels: *cpuProf != "",
		}
		if *progress > 0 {
			opts.Progress = os.Stderr
			opts.ProgressInterval = *progress
		}
		switch *optimize {
		case "es":
			res, err = core.Exhaustive(ctx, g, opts)
		case "hs":
			res, err = core.Heuristic(ctx, g, opts)
		case "greedy":
			res, err = core.HSGreedy(ctx, g, opts)
		default:
			return fmt.Errorf("unknown optimizer %q", *optimize)
		}
		if err != nil {
			return err
		}
		fmt.Printf("optimized with %s: cost %.0f -> %.0f (%.1f%%)\n",
			res.Algorithm, res.InitialCost, res.BestCost, res.Improvement())
		g = res.Best
	}

	bindings, err := bindCSV(g, *dataDir)
	if err != nil {
		return err
	}

	var engineMode engine.Mode
	switch *mode {
	case "materialized":
		engineMode = engine.Materialized
	case "pipelined":
		engineMode = engine.Pipelined
	case "parallel":
		engineMode = engine.Parallel
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	eopts := []engine.Option{engine.WithMode(engineMode), engine.WithMetrics(reg),
		engine.WithPartitions(*partitions), engine.WithJournal(jnl)}
	if *cpuProf != "" {
		eopts = append(eopts, engine.WithPprofLabels())
	}
	if *faults != "" {
		seed, rate, err := fault.ParseSpec(*faults)
		if err != nil {
			return err
		}
		eopts = append(eopts,
			engine.WithFaultPlan(fault.NewPlan(seed, rate)),
			engine.WithRetry(fault.Policy{
				MaxAttempts: *retries,
				BaseDelay:   time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				Seed:        seed,
			}))
	}
	e := engine.New(bindings, eopts...)

	var result *engine.RunResult
	if *checkpoint != "" {
		cr, err := engine.NewCheckpointRunner(e, *checkpoint)
		if err != nil {
			return err
		}
		if staged, _ := cr.Staged(); len(staged) > 0 {
			fmt.Printf("resuming: %d staged node outputs found\n", len(staged))
		}
		result, err = cr.Run(ctx, g)
		if err != nil {
			return fmt.Errorf("run failed (progress staged in %s, re-run to resume): %w", *checkpoint, err)
		}
	} else {
		result, err = e.Run(ctx, g)
		if err != nil {
			return err
		}
	}

	fmt.Printf("executed in %v\n", result.Elapsed.Round(time.Millisecond))
	order, _ := g.TopoSort()
	for _, id := range order {
		n := g.Node(id)
		fmt.Printf("  %3d %-35s %8d rows\n", id, n.Label(), result.NodeRows[id])
	}
	for _, name := range result.SortTargets() {
		fmt.Printf("target %s: %d rows written to %s\n",
			name, len(result.Targets[name]), csvPath(*dataDir, name))
	}

	if *explain {
		est, err := cost.Explain(g, cost.RowModel{}, result.NodeRows)
		if err != nil {
			return err
		}
		fmt.Println("\nestimated vs actual cardinalities:")
		fmt.Print(cost.FormatExplain(est))
	}
	if *calibrate {
		cal, err := cost.Calibrate(g, result.NodeRows)
		if err != nil {
			return err
		}
		res, err := core.Heuristic(ctx, cal, core.Options{IncrementalCost: true, MaxStates: 30_000})
		if err != nil {
			return err
		}
		fmt.Printf("\ncalibrated re-optimization: cost %.0f -> %.0f (%.1f%%)\n",
			res.InitialCost, res.BestCost, res.Improvement())
		fmt.Println("re-optimized plan under observed selectivities:")
		fmt.Print(res.Best)
	}
	if *metrics != "" {
		if err := reg.Snapshot().WriteJSONFile(*metrics); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metrics)
	}
	if jnl != nil {
		// Journal write failures are non-fatal by design — the load
		// already completed — but a truncated journal deserves a warning.
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "etlrun: journal:", err)
		}
		fmt.Printf("run journal written to %s (%d events, %d dropped)\n",
			*journal, jnl.Written(), jnl.Dropped())
	}
	if *traceOut != "" {
		if err := reg.Snapshot().WriteTraceEventsFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("trace events written to %s (load in Perfetto or chrome://tracing)\n", *traceOut)
	}
	return nil
}

// bindCSV binds every recordset the workflow names — sources and targets
// from the graph, plus lookup recordsets referenced by surrogate-key and
// key-check activities — to CSV files in dir. Source and lookup files must
// exist; target files are created.
func bindCSV(g *workflow.Graph, dir string) (map[string]data.Recordset, error) {
	bindings := map[string]data.Recordset{}

	bind := func(name string, schema data.Schema, mustExist bool) error {
		if _, dup := bindings[name]; dup {
			return nil
		}
		path := csvPath(dir, name)
		if mustExist {
			if _, err := os.Stat(path); err != nil {
				return fmt.Errorf("recordset %q: %w", name, err)
			}
			// Schema comes from the file header for lookups (schema nil).
			if schema == nil {
				header, err := readHeader(path)
				if err != nil {
					return err
				}
				schema = header
			}
		}
		rs, err := data.NewFileRecordset(name, schema, path)
		if err != nil {
			return err
		}
		bindings[name] = rs
		return nil
	}

	for _, id := range g.Recordsets() {
		n := g.Node(id)
		isSource := len(g.Providers(id)) == 0
		if err := bind(n.RS.Name, n.RS.Schema, isSource); err != nil {
			return nil, err
		}
	}
	for _, id := range g.Activities() {
		a := g.Node(id).Act
		if a.Sem.Lookup != "" {
			if err := bind(a.Sem.Lookup, nil, true); err != nil {
				return nil, err
			}
		}
	}
	return bindings, nil
}

func csvPath(dir, name string) string {
	return filepath.Join(dir, strings.ReplaceAll(name, string(filepath.Separator), "_")+".csv")
}

func readHeader(path string) (data.Schema, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var line strings.Builder
	buf := make([]byte, 1)
	for {
		if _, err := f.Read(buf); err != nil {
			return nil, fmt.Errorf("reading header of %s: %w", path, err)
		}
		if buf[0] == '\n' {
			break
		}
		if buf[0] != '\r' {
			line.WriteByte(buf[0])
		}
	}
	return data.Schema(strings.Split(line.String(), ",")), nil
}

// printImpact renders the change/failure impact analysis for the named
// recordset or activity identifier.
func printImpact(g *workflow.Graph, name string) error {
	names := dsl.NodeNames(g)
	var known []string
	var matches []workflow.NodeID
	for id, n := range names {
		known = append(known, n)
		if n == name {
			matches = append(matches, id)
		}
	}
	if len(matches) == 0 {
		sort.Strings(known)
		return fmt.Errorf("unknown node %q (have: %s)", name, strings.Join(known, ", "))
	}
	// Collect-then-sort keeps the pick independent of map iteration order:
	// the smallest matching node ID wins, deterministically.
	sort.Slice(matches, func(i, j int) bool { return matches[i] < matches[j] })
	target := matches[0]
	imp, err := g.AnalyzeImpact(target)
	if err != nil {
		return err
	}
	fmt.Printf("impact of a change or failure at %s:\n", name)
	fmt.Printf("  downstream (must re-run): %d nodes\n", len(imp.Downstream))
	for _, id := range imp.Downstream {
		fmt.Printf("    %s\n", names[id])
	}
	fmt.Printf("  stale targets: %v\n", imp.Targets)
	fmt.Printf("  upstream dependencies: %d nodes (sources: %v)\n", len(imp.Upstream), imp.Sources)
	un, err := g.UnaffectedBy(target)
	if err != nil {
		return err
	}
	fmt.Printf("  unaffected activities: %d\n", len(un))
	return nil
}
