package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"etlopt/internal/dsl"
	"etlopt/internal/engine"
	"etlopt/internal/fault"
	"etlopt/internal/obs"
	"etlopt/internal/share"
	"etlopt/internal/workflow"
)

// suiteFlags is the slice of the CLI configuration suite mode consumes.
type suiteFlags struct {
	dataDir    string
	mode       string
	partitions int
	workers    int
	cacheBytes int64
	spillDir   string
	faults     string
	retries    int
	metrics    string
	journal    string
}

// runSuite executes several workflow files as one shared-work job.
func runSuite(files []string, f suiteFlags) error {
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()

	var reg *obs.Registry
	if f.metrics != "" {
		reg = obs.NewRegistry()
	}
	var jnl *obs.Journal
	if f.journal != "" {
		var err error
		jnl, err = obs.NewJournalFile(f.journal, reg)
		if err != nil {
			return err
		}
		defer jnl.Close()
	}

	wfs := make([]share.Workflow, 0, len(files))
	targetPaths := map[string]string{}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		g, err := dsl.Parse(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		dir := suiteDataDir(f.dataDir, file)
		bindings, err := bindCSV(g, dir)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		name := workflowName(file)
		if err := checkTargetCollisions(g, dir, name, targetPaths); err != nil {
			return err
		}
		wfs = append(wfs, share.Workflow{Name: name, Graph: g, Bindings: bindings})
	}

	eopts, err := suiteEngineOptions(f, reg, jnl)
	if err != nil {
		return err
	}
	res, err := share.RunSuite(ctx, wfs, share.Options{
		Workers:    f.workers,
		CacheBytes: f.cacheBytes,
		SpillDir:   f.spillDir,
		Engine:     eopts,
		Journal:    jnl,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}

	failed := 0
	for i, wr := range res.Workflows {
		if wr.Err != nil {
			failed++
			fmt.Printf("workflow %s: FAILED: %v\n", wr.Name, wr.Err)
			continue
		}
		fmt.Printf("workflow %s: executed in %v\n", wr.Name, wr.Result.Elapsed.Round(time.Millisecond))
		dir := suiteDataDir(f.dataDir, files[i])
		for _, name := range wr.Result.SortTargets() {
			fmt.Printf("  target %s: %d rows written to %s\n",
				name, len(wr.Result.Targets[name]), csvPath(dir, name))
		}
	}

	st := res.Stats
	fmt.Printf("suite: %d workflows, %d shared stages, %d stage runs\n",
		st.Workflows, st.Stages, st.StageRuns)
	fmt.Printf("  nodes executed %d of %d independent (%d saved)\n",
		st.NodesExecuted, st.NodesIndependent, st.NodesIndependent-st.NodesExecuted)
	fmt.Printf("  cache: %d lookups, %d hits, %d misses, %d evictions, %d spills; %d bytes of recomputation saved\n",
		st.Cache.Lookups, st.Cache.Hits, st.Cache.Misses,
		st.Cache.Evictions, st.Cache.Spills, st.Cache.HitBytes)

	if f.metrics != "" {
		if err := reg.Snapshot().WriteJSONFile(f.metrics); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", f.metrics)
	}
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "etlrun: journal:", err)
		}
		fmt.Printf("run journal written to %s (%d events, %d dropped)\n",
			f.journal, jnl.Written(), jnl.Dropped())
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d workflows failed", failed, len(res.Workflows))
	}
	return nil
}

// suiteEngineOptions lowers the CLI flags to per-stage engine options.
func suiteEngineOptions(f suiteFlags, reg *obs.Registry, jnl *obs.Journal) ([]engine.Option, error) {
	var mode engine.Mode
	switch f.mode {
	case "materialized":
		mode = engine.Materialized
	case "pipelined":
		mode = engine.Pipelined
	case "parallel":
		mode = engine.Parallel
	default:
		return nil, fmt.Errorf("unknown mode %q", f.mode)
	}
	eopts := []engine.Option{engine.WithMode(mode), engine.WithMetrics(reg),
		engine.WithPartitions(f.partitions), engine.WithJournal(jnl)}
	if f.faults != "" {
		seed, rate, err := fault.ParseSpec(f.faults)
		if err != nil {
			return nil, err
		}
		eopts = append(eopts,
			engine.WithFaultPlan(fault.NewPlan(seed, rate)),
			engine.WithRetry(fault.Policy{
				MaxAttempts: f.retries,
				BaseDelay:   time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				Seed:        seed,
			}))
	}
	return eopts, nil
}

// suiteDataDir returns the per-workflow data directory: the base dir's
// subdirectory named after the workflow file when it exists, the base dir
// itself otherwise.
func suiteDataDir(base, file string) string {
	sub := filepath.Join(base, workflowName(file))
	if st, err := os.Stat(sub); err == nil && st.IsDir() {
		return sub
	}
	return base
}

func workflowName(file string) string {
	return strings.TrimSuffix(filepath.Base(file), filepath.Ext(file))
}

// checkTargetCollisions rejects suites in which two workflows would write
// the same target CSV: concurrent members must not race on output files.
// Per-workflow data subdirectories (<data-dir>/<workflow-basename>/) keep
// same-named targets apart.
func checkTargetCollisions(g *workflow.Graph, dir, name string, seen map[string]string) error {
	for _, id := range g.Targets() {
		n := g.Node(id)
		if n.Kind != workflow.KindRecordset {
			continue
		}
		path := csvPath(dir, n.RS.Name)
		if prev, dup := seen[path]; dup {
			return fmt.Errorf("workflows %s and %s both write %s; give each a data subdirectory %s",
				prev, name, path, filepath.Join(dir, "<workflow-basename>"))
		}
		seen[path] = name
	}
	return nil
}
