package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/generator"
)

// setupSharedSuite writes n shared-prefix workflow files plus per-workflow
// data subdirectories under dir, following etlgen's layout. Returns the
// workflow file paths and the data root.
func setupSharedSuite(t *testing.T, dir string, n int) ([]string, string) {
	t.Helper()
	scs, err := generator.SharedSuite(generator.Small, n, 321)
	if err != nil {
		t.Fatal(err)
	}
	dataRoot := filepath.Join(dir, "data")
	files := make([]string, n)
	for i, sc := range scs {
		text, err := dsl.Serialize(sc.Graph)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("shared-%02d", i+1)
		files[i] = filepath.Join(dir, name+".etl")
		if err := os.WriteFile(files[i], []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		sub := filepath.Join(dataRoot, name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		writeRows := func(bindings map[string]data.Rows) {
			for bname, rows := range bindings {
				rs, err := data.NewFileRecordset(bname, sc.Schemas[bname], filepath.Join(sub, bname+".csv"))
				if err != nil {
					t.Fatal(err)
				}
				if err := rs.Load(rows); err != nil {
					t.Fatal(err)
				}
			}
		}
		writeRows(sc.Sources)
		writeRows(sc.Lookups)
	}
	return files, dataRoot
}

// TestCLISuiteMatchesSoloRuns runs two shared-prefix workflows through
// suite mode and each one individually, and requires the target CSVs to be
// byte-identical.
func TestCLISuiteMatchesSoloRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	suiteDir := t.TempDir()
	soloDir := t.TempDir()
	files, dataRoot := setupSharedSuite(t, suiteDir, 2)
	soloFiles, soloData := setupSharedSuite(t, soloDir, 2)

	args := append([]string{"-data", dataRoot, "-shared-cache", "1048576", "-suite-workers", "2"}, files...)
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("suite run: %v\n%s", err, out)
	}
	for _, want := range []string{"suite: 2 workflows", "shared stages", "recomputation saved"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("suite output missing %q:\n%s", want, out)
		}
	}

	for i, wf := range soloFiles {
		sub := filepath.Join(soloData, fmt.Sprintf("shared-%02d", i+1))
		if out, err := exec.Command(bin, "-in", wf, "-data", sub).CombinedOutput(); err != nil {
			t.Fatalf("solo run %d: %v\n%s", i, err, out)
		}
	}
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("shared-%02d", i)
		suiteCSV, err := os.ReadFile(filepath.Join(dataRoot, name, "DW.FACT.csv"))
		if err != nil {
			t.Fatal(err)
		}
		soloCSV, err := os.ReadFile(filepath.Join(soloData, name, "DW.FACT.csv"))
		if err != nil {
			t.Fatal(err)
		}
		if string(suiteCSV) != string(soloCSV) {
			t.Errorf("workflow %s: suite-mode target CSV differs from solo run", name)
		}
	}
}

// TestCLISuiteRejectsSingleRunFlags covers the guard keeping suite mode
// execution-only.
func TestCLISuiteRejectsSingleRunFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	wf := setupFig1(t, dir)
	out, err := exec.Command(bin, "-data", dir, "-checkpoint", filepath.Join(dir, "stage"), wf, wf).CombinedOutput()
	if err == nil {
		t.Fatalf("suite run with -checkpoint succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "-checkpoint applies to single-workflow runs") {
		t.Errorf("unexpected error output:\n%s", out)
	}
}

// TestCLISuiteTargetCollision covers the duplicate-target guard: two
// workflows writing the same CSV path must be rejected before any engine
// runs.
func TestCLISuiteTargetCollision(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	wf1 := setupFig1(t, dir)
	text, err := os.ReadFile(wf1)
	if err != nil {
		t.Fatal(err)
	}
	wf2 := filepath.Join(dir, "fig1-copy.etl")
	if err := os.WriteFile(wf2, text, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-data", dir, wf1, wf2).CombinedOutput()
	if err == nil {
		t.Fatalf("colliding suite succeeded:\n%s", out)
	}
	if !strings.Contains(string(out), "both write") {
		t.Errorf("unexpected error output:\n%s", out)
	}
}
