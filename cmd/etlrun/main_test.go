package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/templates"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "etlrun")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building etlrun: %v\n%s", err, out)
	}
	return bin
}

// setupFig1 writes the Fig. 1 workflow file and its source CSVs into dir.
func setupFig1(t *testing.T, dir string) string {
	t.Helper()
	sc := templates.Fig1Scenario(40, 120)
	text, err := dsl.Serialize(sc.Graph)
	if err != nil {
		t.Fatal(err)
	}
	wf := filepath.Join(dir, "fig1.etl")
	if err := os.WriteFile(wf, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, rows := range sc.Sources {
		rs, err := data.NewFileRecordset(name, sc.Schemas[name], filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.Load(rows); err != nil {
			t.Fatal(err)
		}
	}
	return wf
}

func TestCLIRunFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	wf := setupFig1(t, dir)

	out, err := exec.Command(bin, "-in", wf, "-data", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "target DW.PARTS:") {
		t.Errorf("missing target report:\n%s", out)
	}
	// The target CSV was created and holds rows.
	rs, err := data.NewFileRecordset("DW.PARTS",
		data.Schema{"PKEY", "SOURCE", "DATE", "ECOST"}, filepath.Join(dir, "DW.PARTS.csv"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := rs.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no rows written to the target CSV")
	}
}

func TestCLIRunOptimizedPipelinedMatchesPlain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)

	dirA := t.TempDir()
	wfA := setupFig1(t, dirA)
	if out, err := exec.Command(bin, "-in", wfA, "-data", dirA).CombinedOutput(); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	dirB := t.TempDir()
	wfB := setupFig1(t, dirB)
	out, err := exec.Command(bin, "-in", wfB, "-data", dirB, "-optimize", "hs", "-mode", "pipelined").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "optimized with HS") {
		t.Errorf("missing optimization report:\n%s", out)
	}

	schema := data.Schema{"PKEY", "SOURCE", "DATE", "ECOST"}
	a, err := data.NewFileRecordset("A", schema, filepath.Join(dirA, "DW.PARTS.csv"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := data.NewFileRecordset("B", schema, filepath.Join(dirB, "DW.PARTS.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rowsA, _ := a.Scan()
	rowsB, _ := b.Scan()
	if !rowsA.EqualMultiset(rowsB) {
		t.Errorf("optimized pipelined run wrote different data: %d vs %d rows", len(rowsA), len(rowsB))
	}
}

func TestCLIImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	wf := setupFig1(t, dir)
	out, err := exec.Command(bin, "-in", wf, "-impact", "PARTS2").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "downstream (must re-run)") ||
		!strings.Contains(text, "stale targets: [DW.PARTS]") {
		t.Errorf("impact output unexpected:\n%s", text)
	}
	if err := exec.Command(bin, "-in", wf, "-impact", "NOPE").Run(); err == nil {
		t.Error("unknown impact node should fail")
	}
}

func TestCLIMissingSource(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	wf := setupFig1(t, dir)
	os.Remove(filepath.Join(dir, "PARTS2.csv"))
	if err := exec.Command(bin, "-in", wf, "-data", dir).Run(); err == nil {
		t.Error("missing source CSV should fail")
	}
}

func TestCLICheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	wf := setupFig1(t, dir)
	stage := filepath.Join(dir, "stage")
	out, err := exec.Command(bin, "-in", wf, "-data", dir, "-checkpoint", stage).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	// Successful completion clears the staging directory.
	if _, err := os.Stat(stage); !os.IsNotExist(err) {
		t.Errorf("staging dir should be removed after success, stat err = %v", err)
	}
}

func TestCLIExplainAndCalibrate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	wf := setupFig1(t, dir)
	out, err := exec.Command(bin, "-in", wf, "-data", dir, "-explain", "-calibrate").CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "estimated vs actual cardinalities") {
		t.Errorf("missing explain table:\n%s", text)
	}
	if !strings.Contains(text, "calibrated re-optimization") {
		t.Errorf("missing calibration report:\n%s", text)
	}
}
