package main

import (
	"fmt"
	"io"
	"math"
	"sort"

	"etlopt/internal/analysis"
	"etlopt/internal/obs"
	"etlopt/internal/stats"
)

// This file is `etlvet obs`: the flight-recorder report. It reads a
// -journal JSONL file, renders a human-readable run report (run header,
// phase timeline, top-k slow nodes, selectivity drift, cache hit rates,
// shared-work cache activity, transition funnel, checkpoint and drop
// accounting) to stdout, and
// returns integrity problems as findings through the shared report
// layer, so -format/-baseline/exit codes behave like every other
// subcommand.

// obsStats is the aggregation of one journal: everything the report
// sections print, computed in a single pass over the events.
type obsStats struct {
	events   []obs.Event
	summary  *obs.Event
	maxOff   float64
	runs     []obs.Event                 // run start/end boundaries, file order
	phases   []obsPhase                  // phase boundaries, paired in file order
	nodes    map[string]*obsNode         // per-node execution aggregate
	drift    map[string][2]float64       // node -> last {observed, modeled}
	caches   map[string][2]int64         // cache -> {hits, total}
	shared   map[string][2]int64         // shared-cache action -> {count, bytes}
	funnel   map[string]map[string]int64 // transition op -> action -> count
	chkpt    map[string]int64            // checkpoint action -> count
	faults   map[string]int64            // "site (kind)" -> injected fault count
	retries  int64
	retrySec float64 // total backoff delay spent across retries
	resumes  int64
	resRows  int64 // rows restored by checkpoint resumes
	batches  int64
	exchange int64 // total rows through repartition exchanges
}

type obsPhase struct {
	name     string
	start    float64
	end      float64
	finished bool
}

type obsNode struct {
	name  string
	execs int64
	rows  int64
	sec   float64
}

// aggregateJournal folds the event stream into the report aggregates.
func aggregateJournal(events []obs.Event) *obsStats {
	st := &obsStats{
		events: events,
		nodes:  map[string]*obsNode{},
		drift:  map[string][2]float64{},
		caches: map[string][2]int64{},
		shared: map[string][2]int64{},
		funnel: map[string]map[string]int64{},
		chkpt:  map[string]int64{},
		faults: map[string]int64{},
	}
	open := map[string]int{} // phase name -> index of unmatched start
	for i := range events {
		e := events[i]
		if e.Off > st.maxOff {
			st.maxOff = e.Off
		}
		switch e.T {
		case obs.EventSummary:
			st.summary = &events[i]
		case obs.EventRun:
			st.runs = append(st.runs, e)
		case obs.EventPhase:
			switch e.Action {
			case "start":
				open[e.Op] = len(st.phases)
				st.phases = append(st.phases, obsPhase{name: e.Op, start: e.Off})
			case "end":
				if idx, ok := open[e.Op]; ok {
					st.phases[idx].end = e.Off
					st.phases[idx].finished = true
					delete(open, e.Op)
				} else {
					st.phases = append(st.phases, obsPhase{name: e.Op, end: e.Off, finished: true})
				}
			}
		case obs.EventTransition:
			m := st.funnel[e.Op]
			if m == nil {
				m = map[string]int64{}
				st.funnel[e.Op] = m
			}
			m[e.Action]++
		case obs.EventCache:
			if e.Op == obs.SharedCacheName {
				// The shared-work cache journals richer events (per-action
				// byte counts), so it gets its own aggregate instead of the
				// plain hit/total bucket.
				s := st.shared[e.Action]
				s[0]++
				s[1] += e.Rows
				st.shared[e.Action] = s
				break
			}
			c := st.caches[e.Op]
			if e.Action == "hit" {
				c[0]++
			}
			c[1]++
			st.caches[e.Op] = c
		case obs.EventNode:
			n := st.nodes[e.Node]
			if n == nil {
				n = &obsNode{name: e.Node}
				st.nodes[e.Node] = n
			}
			n.execs++
			n.rows += e.Rows
			n.sec += e.Sec
		case obs.EventBatch:
			st.batches++
		case obs.EventExchange:
			st.exchange += e.Rows
		case obs.EventCheckpoint:
			st.chkpt[e.Action]++
		case obs.EventFault:
			// FaultEvent stores the injection site in Action and the kind
			// in Detail.
			st.faults[e.Action+" ("+e.Detail+")"]++
		case obs.EventRetry:
			st.retries++
			st.retrySec += e.Sec
		case obs.EventResume:
			st.resumes++
			st.resRows += e.Rows
		case obs.EventDrift:
			st.drift[e.Node] = [2]float64{e.Observed, e.Modeled}
		}
	}
	return st
}

// auditObs returns the integrity findings for a parsed journal: a
// missing or inconsistent summary trailer, write failures, and
// malformed per-event payloads. Drops are legal (the journal is lossy
// by design) and surface as advice, not warnings.
func (st *obsStats) auditObs(path string) []analysis.Finding {
	var out []analysis.Finding
	report := func(sev analysis.Severity, format string, args ...interface{}) {
		out = append(out, analysis.Finding{
			Severity: sev, Check: "obs", Node: -1,
			File: path, Message: fmt.Sprintf(format, args...),
		})
	}
	if len(st.events) == 0 {
		report(analysis.Warning, "journal is empty")
		return out
	}
	if st.summary == nil {
		report(analysis.Warning, "journal has no summary trailer — the recording run did not close it (crash or truncation?)")
	} else {
		if st.summary != &st.events[len(st.events)-1] {
			report(analysis.Warning, "summary event is not the last record")
		}
		body := int64(len(st.events) - 1)
		if st.summary.Events != body {
			report(analysis.Warning, "summary claims %d events, file holds %d", st.summary.Events, body)
		}
		if st.summary.Errors > 0 {
			report(analysis.Warning, "%d event(s) lost to write failures", st.summary.Errors)
		}
		if st.summary.Dropped > 0 {
			report(analysis.Advice, "%d event(s) dropped under buffer pressure (the journal is lossy by design; totals below are partial)", st.summary.Dropped)
		}
	}
	if len(st.shared) > 0 {
		if hits, lookups := st.shared["hit"][0], st.shared["lookup"][0]; hits > lookups {
			report(analysis.Warning, "shared cache journaled %d hits but only %d lookups — the accounting is corrupt", hits, lookups)
		}
		if ev, ad := st.shared["evict"][1], st.shared["admit"][1]; ev > ad {
			report(analysis.Warning, "shared cache eviction freed %d bytes but admission only recorded %d", ev, ad)
		}
	}
	seen := map[int64]bool{}
	for _, e := range st.events {
		if e.Off < 0 {
			report(analysis.Warning, "event seq %d has a negative time offset (%v)", e.Seq, e.Off)
		}
		if seen[e.Seq] {
			report(analysis.Warning, "duplicate event sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
		if e.T == obs.EventNode && e.Sec < 0 {
			report(analysis.Warning, "node %s has negative wall time (%v)", e.Node, e.Sec)
		}
		if e.T == obs.EventDrift && (badRatio(e.Observed) || badRatio(e.Modeled)) {
			report(analysis.Warning, "drift for node %s has a non-finite selectivity (observed %v, modeled %v)", e.Node, e.Observed, e.Modeled)
		}
		if e.T == obs.EventFault && (e.Action == "" || e.Detail == "") {
			report(analysis.Warning, "fault event seq %d lacks site/kind attribution", e.Seq)
		}
		if e.T == obs.EventRetry && e.Attempt < 2 {
			report(analysis.Warning, "retry event seq %d claims attempt %d; retries start at 2", e.Seq, e.Attempt)
		}
	}
	return out
}

func badRatio(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// renderObsReport writes the human-readable run report for one journal
// and returns its integrity findings.
func renderObsReport(w io.Writer, path string, topK int) ([]analysis.Finding, error) {
	events, err := obs.ReadJournalFile(path)
	if err != nil {
		return nil, err
	}
	st := aggregateJournal(events)
	findings := st.auditObs(path)
	if len(st.events) == 0 {
		return findings, nil
	}

	fmt.Fprintf(w, "== %s ==\n", path)
	for _, r := range st.runs {
		fmt.Fprintf(w, "run %-5s %-24s at %8.3fs\n", r.Action, r.Detail, r.Off)
	}
	fmt.Fprintf(w, "%d event(s) over %.3fs", len(st.events), st.maxOff)
	if st.summary != nil {
		fmt.Fprintf(w, "; %d dropped, %d write error(s)", st.summary.Dropped, st.summary.Errors)
	}
	fmt.Fprintln(w)

	if len(st.phases) > 0 {
		fmt.Fprintln(w, "\nphase timeline:")
		t := stats.NewTable("phase", "start", "end", "duration")
		for _, p := range st.phases {
			end, dur := "?", "?"
			if p.finished {
				end = fmt.Sprintf("%.3fs", p.end)
				dur = fmt.Sprintf("%.3fs", p.end-p.start)
			}
			t.AddRow(p.name, fmt.Sprintf("%.3fs", p.start), end, dur)
		}
		fmt.Fprint(w, t.String())
	}

	if len(st.funnel) > 0 {
		fmt.Fprintln(w, "\ntransition funnel:")
		t := stats.NewTable("op", "attempts", "accepts", "prunes", "best")
		for _, op := range sortedKeys(st.funnel) {
			m := st.funnel[op]
			t.AddRow(op, m["attempt"], m["accept"], m["prune"], m["best"])
		}
		fmt.Fprint(w, t.String())
	}

	if len(st.caches) > 0 {
		fmt.Fprintln(w, "\ncache hit rates:")
		t := stats.NewTable("cache", "hits", "lookups", "rate")
		for _, name := range sortedKeys(st.caches) {
			c := st.caches[name]
			rate := 0.0
			if c[1] > 0 {
				rate = float64(c[0]) / float64(c[1])
			}
			t.AddRow(name, c[0], c[1], fmt.Sprintf("%.1f%%", 100*rate))
		}
		fmt.Fprint(w, t.String())
	}

	if len(st.shared) > 0 {
		fmt.Fprintln(w, "\nshared cache activity:")
		t := stats.NewTable("action", "count", "bytes")
		for _, action := range []string{"lookup", "hit", "miss", "admit", "evict", "spill"} {
			if s, ok := st.shared[action]; ok {
				t.AddRow(action, s[0], s[1])
			}
		}
		fmt.Fprint(w, t.String())
		fmt.Fprintf(w, "  %d byte(s) of recomputation saved (served from the shared cache)\n", st.shared["hit"][1])
	}

	if len(st.nodes) > 0 {
		nodes := make([]*obsNode, 0, len(st.nodes))
		for _, n := range st.nodes {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool {
			if nodes[i].sec != nodes[j].sec {
				return nodes[i].sec > nodes[j].sec
			}
			return nodes[i].name < nodes[j].name
		})
		shown := len(nodes)
		if topK > 0 && shown > topK {
			shown = topK
		}
		fmt.Fprintf(w, "\ntop %d slow node(s) of %d:\n", shown, len(nodes))
		t := stats.NewTable("node", "execs", "rows", "total sec", "rows/sec")
		for _, n := range nodes[:shown] {
			rps := "-"
			if n.sec > 0 {
				rps = fmt.Sprintf("%.0f", float64(n.rows)/n.sec)
			}
			t.AddRow(n.name, n.execs, n.rows, fmt.Sprintf("%.4f", n.sec), rps)
		}
		fmt.Fprint(w, t.String())
	}

	if len(st.drift) > 0 {
		type driftRow struct {
			node              string
			observed, modeled float64
		}
		rows := make([]driftRow, 0, len(st.drift))
		for node, d := range st.drift {
			rows = append(rows, driftRow{node, d[0], d[1]})
		}
		sort.Slice(rows, func(i, j int) bool {
			di := math.Abs(rows[i].observed - rows[i].modeled)
			dj := math.Abs(rows[j].observed - rows[j].modeled)
			if di != dj {
				return di > dj
			}
			return rows[i].node < rows[j].node
		})
		shown := len(rows)
		if topK > 0 && shown > topK {
			shown = topK
		}
		fmt.Fprintf(w, "\nselectivity drift (observed vs modeled), top %d of %d:\n", shown, len(rows))
		t := stats.NewTable("node", "observed", "modeled", "drift")
		for _, r := range rows[:shown] {
			t.AddRow(r.node, fmt.Sprintf("%.4f", r.observed), fmt.Sprintf("%.4f", r.modeled),
				fmt.Sprintf("%+.4f", r.observed-r.modeled))
		}
		fmt.Fprint(w, t.String())
	}

	if st.batches > 0 || st.exchange > 0 || len(st.chkpt) > 0 {
		fmt.Fprintln(w, "\nengine activity:")
		if st.batches > 0 {
			fmt.Fprintf(w, "  %d partition batch(es)\n", st.batches)
		}
		if st.exchange > 0 {
			fmt.Fprintf(w, "  %d row(s) through repartition exchanges\n", st.exchange)
		}
		for _, action := range sortedKeys(st.chkpt) {
			fmt.Fprintf(w, "  %d checkpoint node(s) %s\n", st.chkpt[action], action)
		}
	}

	if len(st.faults) > 0 || st.retries > 0 || st.resumes > 0 {
		fmt.Fprintln(w, "\nfault & recovery activity:")
		for _, key := range sortedKeys(st.faults) {
			fmt.Fprintf(w, "  %d fault(s) injected at %s\n", st.faults[key], key)
		}
		if st.retries > 0 {
			fmt.Fprintf(w, "  %d retry attempt(s), %.4fs total backoff\n", st.retries, st.retrySec)
		}
		if st.resumes > 0 {
			fmt.Fprintf(w, "  %d node(s) resumed from checkpoint, %d row(s) restored\n", st.resumes, st.resRows)
		}
	}
	fmt.Fprintln(w)
	return findings, nil
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
