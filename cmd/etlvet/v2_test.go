package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the command in-process and returns stdout, stderr and
// the exit code.
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func decodeFindings(t *testing.T, raw string) []jsonFinding {
	t.Helper()
	var fs []jsonFinding
	if err := json.Unmarshal([]byte(raw), &fs); err != nil {
		t.Fatalf("bad -format json output: %v\n%s", err, raw)
	}
	return fs
}

// TestDiagnosticsFixtures: every abstract-interpretation diagnostic has
// a committed example workflow that triggers it exactly once.
func TestDiagnosticsFixtures(t *testing.T) {
	for fixture, check := range map[string]string{
		"dead-filter.etl":         "dead-filter",
		"unsatisfiable-guard.etl": "unsatisfiable-guard",
		"broken-provenance.etl":   "broken-provenance",
		"cardinality-blowup.etl":  "cardinality-blowup",
	} {
		path := filepath.Join("../../examples/workflows/diagnostics", fixture)
		out, _, code := runCLI(t, "workflow", "-format", "json", path)
		if check == "dead-filter" {
			if code != 0 {
				t.Errorf("%s: advice-only audit should exit 0, got %d", fixture, code)
			}
		} else if code != 1 {
			t.Errorf("%s: warning audit should exit 1, got %d", fixture, code)
		}
		n := 0
		for _, f := range decodeFindings(t, out) {
			if f.Check == check {
				n++
				if f.File != path {
					t.Errorf("%s: finding not anchored to the audited file: %q", fixture, f.File)
				}
			}
		}
		if n != 1 {
			t.Errorf("%s: want exactly one %s finding, got %d\n%s", fixture, check, n, out)
		}
	}
}

// TestCardBoundFlag: raising -card-bound past the fixture's blowup
// silences the finding.
func TestCardBoundFlag(t *testing.T) {
	path := "../../examples/workflows/diagnostics/cardinality-blowup.etl"
	out, _, code := runCLI(t, "workflow", "-card-bound", "100", "-format", "json", path)
	if code != 0 {
		t.Errorf("bound 100 should silence the blowup, exit %d", code)
	}
	for _, f := range decodeFindings(t, out) {
		if f.Check == "cardinality-blowup" {
			t.Errorf("finding survived the raised bound: %+v", f)
		}
	}
}

// TestSARIFOutput: the CLI's -format sarif emits a 2.1.0 log whose
// results carry the audited file as the artifact.
func TestSARIFOutput(t *testing.T) {
	path := "../../examples/workflows/diagnostics/unsatisfiable-guard.etl"
	out, _, code := runCLI(t, "workflow", "-format", "sarif", path)
	if code != 1 {
		t.Errorf("exit %d, want 1", code)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q runs %d", log.Version, len(log.Runs))
	}
	found := false
	for _, r := range log.Runs[0].Results {
		if r.RuleID == "unsatisfiable-guard" {
			found = true
			if len(r.Locations) == 0 || r.Locations[0].PhysicalLocation.ArtifactLocation.URI != path {
				t.Errorf("result lacks the audited file artifact: %+v", r)
			}
		}
	}
	if !found {
		t.Error("unsatisfiable-guard missing from SARIF results")
	}
}

// TestBaselineGate: -write-baseline acknowledges today's findings, and
// the same audit against that baseline exits 0; a different workflow's
// findings still fail.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, ".etlvetbase")
	path := "../../examples/workflows/diagnostics/unsatisfiable-guard.etl"

	if _, _, code := runCLI(t, "workflow", "-baseline", base, "-write-baseline", path); code != 0 {
		t.Fatalf("-write-baseline exit %d", code)
	}
	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "unsatisfiable-guard") {
		t.Fatalf("baseline lacks the acknowledged finding:\n%s", raw)
	}
	out, _, code := runCLI(t, "workflow", "-baseline", base, path)
	if code != 0 {
		t.Errorf("baselined audit should exit 0, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "no findings") {
		t.Errorf("suppressed audit should report clean:\n%s", out)
	}
	// A workflow with a different (un-acknowledged) warning still fails.
	other := "../../examples/workflows/diagnostics/broken-provenance.etl"
	if _, _, code := runCLI(t, "workflow", "-baseline", base, other); code != 1 {
		t.Errorf("new finding should survive the baseline, exit %d", code)
	}
	// Missing baseline file is a usage error, not a silent pass.
	if _, _, code := runCLI(t, "workflow", "-baseline", filepath.Join(dir, "nope"), path); code != 2 {
		t.Errorf("missing baseline should exit 2, got %d", code)
	}
}

// TestFlagValidation: bad -format and bare -write-baseline are usage
// errors; -json is shorthand for -format json; help exits 0 and
// documents the exit contract.
func TestFlagValidation(t *testing.T) {
	if _, _, code := runCLI(t, "src", "-format", "xml", "./."); code != 2 {
		t.Errorf("bad format exit %d, want 2", code)
	}
	if _, _, code := runCLI(t, "src", "-write-baseline", "./."); code != 2 {
		t.Errorf("bare -write-baseline exit %d, want 2", code)
	}
	out, _, code := runCLI(t, "passes", "-json")
	if code != 0 {
		t.Fatalf("passes -json exit %d", code)
	}
	var ps []struct{ Kind, Name, Doc string }
	if err := json.Unmarshal([]byte(out), &ps); err != nil {
		t.Fatalf("passes -json invalid: %v", err)
	}
	if len(ps) < 20 {
		t.Errorf("registry too small over json: %d", len(ps))
	}
	help, _, code := runCLI(t, "-h")
	if code != 0 {
		t.Errorf("-h exit %d, want 0", code)
	}
	for _, want := range []string{"exit status", "0  clean", "1  at least one warning", "2  usage error"} {
		if !strings.Contains(help, want) {
			t.Errorf("help missing %q", want)
		}
	}
}
