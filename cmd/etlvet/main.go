// Command etlvet is the static-analysis front end for the ETL optimizer.
// It runs the three pass families of internal/analysis:
//
//	etlvet workflow <file.etl>...   audit workflow definitions (schema
//	                                dataflow, design checks)
//	etlvet trace <trace.json>...    re-verify recorded optimization runs
//	                                (guards, signatures, costs, §4
//	                                post-conditions)
//	etlvet src <packages>...        lint Go sources for determinism
//	                                hazards (map iteration order,
//	                                wall-clock, entropy, ctx placement)
//	etlvet passes                   list every registered pass
//
// Exit status: 0 when clean (advice-only counts as clean), 1 when any
// warning was found, 2 on usage or input errors.
package main

import (
	"fmt"
	"os"

	"etlopt/internal/analysis"
	"etlopt/internal/dsl"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  etlvet workflow <file.etl>...   audit workflow definitions
  etlvet trace <trace.json>...    re-verify recorded optimization runs
  etlvet src <packages>...        lint Go sources for determinism hazards
  etlvet passes                   list registered passes`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "workflow", "trace":
		if len(rest) == 0 {
			usage()
			return 2
		}
	case "src":
		if len(rest) == 0 {
			rest = []string{"./..."}
		}
	case "passes":
		for _, p := range analysis.AllPasses() {
			fmt.Printf("%-8s %-22s %s\n", p.Kind(), p.Name(), p.Doc())
		}
		return 0
	default:
		usage()
		return 2
	}

	warnings, clean := 0, true
	for _, arg := range rest {
		var (
			fs  []analysis.Finding
			err error
		)
		switch cmd {
		case "workflow":
			fs, err = auditWorkflowFile(arg)
		case "trace":
			fs, err = auditTraceFile(arg)
		case "src":
			fs, err = analysis.AnalyzeSource([]string{arg})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "etlvet: %s: %v\n", arg, err)
			return 2
		}
		for _, f := range fs {
			fmt.Printf("%s: %s\n", arg, f.String())
			clean = false
		}
		warnings += analysis.CountWarnings(fs)
	}
	if clean {
		fmt.Println("no findings")
	}
	if warnings > 0 {
		fmt.Fprintf(os.Stderr, "etlvet: %d warning(s)\n", warnings)
		return 1
	}
	return 0
}

func auditWorkflowFile(path string) ([]analysis.Finding, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := dsl.Parse(string(src))
	if err != nil {
		return nil, err
	}
	fs, err := analysis.CheckWorkflow(g)
	if err != nil {
		return nil, err
	}
	// Render graph locations with their DSL names rather than raw IDs.
	names := dsl.NodeNames(g)
	for i := range fs {
		if name, ok := names[fs[i].Node]; fs[i].Node >= 0 && ok {
			fs[i].Node, fs[i].Where = -1, name
		}
	}
	return fs, nil
}

func auditTraceFile(path string) ([]analysis.Finding, error) {
	t, err := analysis.ReadTraceFile(path)
	if err != nil {
		return nil, err
	}
	return analysis.AuditTrace(t)
}
