// Command etlvet is the static-analysis front end for the ETL optimizer.
// It runs the three pass families of internal/analysis:
//
//	etlvet workflow <file.etl>...   audit workflow definitions (schema
//	                                dataflow, design checks)
//	etlvet trace <trace.json>...    re-verify recorded optimization runs
//	                                (guards, signatures, costs, §4
//	                                post-conditions)
//	etlvet src <packages>...        lint Go sources for determinism
//	                                hazards (map iteration order,
//	                                wall-clock, entropy, ctx placement)
//	etlvet metrics <snap.json> [series]...
//	                                validate a -metrics snapshot: internal
//	                                consistency plus presence of every
//	                                named series
//	etlvet passes                   list every registered pass
//
// Exit status: 0 when clean (advice-only counts as clean), 1 when any
// warning was found, 2 on usage or input errors.
package main

import (
	"fmt"
	"math"
	"os"

	"etlopt/internal/analysis"
	"etlopt/internal/dsl"
	"etlopt/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  etlvet workflow <file.etl>...   audit workflow definitions
  etlvet trace <trace.json>...    re-verify recorded optimization runs
  etlvet src <packages>...        lint Go sources for determinism hazards
  etlvet metrics <snap.json> [series]...
                                  validate a -metrics snapshot and require series
  etlvet passes                   list registered passes`)
}

func run(args []string) int {
	if len(args) == 0 {
		usage()
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "workflow", "trace":
		if len(rest) == 0 {
			usage()
			return 2
		}
	case "metrics":
		if len(rest) == 0 {
			usage()
			return 2
		}
		return runMetrics(rest[0], rest[1:])
	case "src":
		if len(rest) == 0 {
			rest = []string{"./..."}
		}
	case "passes":
		for _, p := range analysis.AllPasses() {
			fmt.Printf("%-8s %-22s %s\n", p.Kind(), p.Name(), p.Doc())
		}
		return 0
	default:
		usage()
		return 2
	}

	warnings, clean := 0, true
	for _, arg := range rest {
		var (
			fs  []analysis.Finding
			err error
		)
		switch cmd {
		case "workflow":
			fs, err = auditWorkflowFile(arg)
		case "trace":
			fs, err = auditTraceFile(arg)
		case "src":
			fs, err = analysis.AnalyzeSource([]string{arg})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "etlvet: %s: %v\n", arg, err)
			return 2
		}
		for _, f := range fs {
			fmt.Printf("%s: %s\n", arg, f.String())
			clean = false
		}
		warnings += analysis.CountWarnings(fs)
	}
	if clean {
		fmt.Println("no findings")
	}
	if warnings > 0 {
		fmt.Fprintf(os.Stderr, "etlvet: %d warning(s)\n", warnings)
		return 1
	}
	return 0
}

// runMetrics validates a -metrics JSON snapshot: it must parse, every
// instrument must be internally consistent (non-negative counters and
// histogram counts, bucket counts summing to the histogram count, finite
// gauge values), and every series named on the command line must be
// present. Same exit semantics as the pass families: 0 clean, 1 findings,
// 2 unreadable input.
func runMetrics(path string, required []string) int {
	snap, err := obs.ReadSnapshotFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "etlvet: %s: %v\n", path, err)
		return 2
	}
	problems := 0
	report := func(format string, args ...interface{}) {
		fmt.Printf("%s: warning [metrics] %s\n", path, fmt.Sprintf(format, args...))
		problems++
	}
	for _, c := range snap.Counters {
		if c.Value < 0 {
			report("counter %s is negative (%d)", c.Series, c.Value)
		}
	}
	for _, g := range snap.Gauges {
		if math.IsNaN(g.Value) || math.IsInf(g.Value, 0) {
			report("gauge %s is not finite (%v)", g.Series, g.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Count < 0 {
			report("histogram %s has negative count (%d)", h.Series, h.Count)
			continue
		}
		if len(h.BucketCounts) != len(h.Bounds)+1 {
			report("histogram %s has %d bucket counts for %d bounds (want bounds+1)",
				h.Series, len(h.BucketCounts), len(h.Bounds))
			continue
		}
		var sum int64
		for _, n := range h.BucketCounts {
			if n < 0 {
				report("histogram %s has a negative bucket count (%d)", h.Series, n)
			}
			sum += n
		}
		if sum != h.Count {
			report("histogram %s bucket counts sum to %d, count is %d", h.Series, sum, h.Count)
		}
	}
	for _, series := range required {
		if !snap.Has(series) {
			report("required series %s is missing", series)
		}
	}
	if problems == 0 {
		fmt.Printf("no findings (%d counters, %d gauges, %d histograms, %d required series present)\n",
			len(snap.Counters), len(snap.Gauges), len(snap.Histograms), len(required))
		return 0
	}
	fmt.Fprintf(os.Stderr, "etlvet: %d warning(s)\n", problems)
	return 1
}

func auditWorkflowFile(path string) ([]analysis.Finding, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := dsl.Parse(string(src))
	if err != nil {
		return nil, err
	}
	fs, err := analysis.CheckWorkflow(g)
	if err != nil {
		return nil, err
	}
	// Render graph locations with their DSL names rather than raw IDs.
	names := dsl.NodeNames(g)
	for i := range fs {
		if name, ok := names[fs[i].Node]; fs[i].Node >= 0 && ok {
			fs[i].Node, fs[i].Where = -1, name
		}
	}
	return fs, nil
}

func auditTraceFile(path string) ([]analysis.Finding, error) {
	t, err := analysis.ReadTraceFile(path)
	if err != nil {
		return nil, err
	}
	return analysis.AuditTrace(t)
}
