// Command etlvet is the static-analysis front end for the ETL optimizer.
// It runs the three pass families of internal/analysis:
//
//	etlvet workflow <file.etl>...   audit workflow definitions (schema
//	                                dataflow, design checks, abstract
//	                                interpretation over cardinality,
//	                                nullability and provenance domains)
//	etlvet trace <trace.json>...    re-verify recorded optimization runs
//	                                (guards, signatures, costs, §4
//	                                post-conditions)
//	etlvet src <packages>...        lint Go sources for determinism
//	                                hazards and COW/concurrency
//	                                invariant violations
//	etlvet metrics <snap.json> [series]...
//	                                validate a -metrics snapshot: internal
//	                                consistency plus presence of every
//	                                named series
//	etlvet obs <run.jsonl>...       render a run report from a -journal
//	                                flight recording (phase timeline, top-k
//	                                slow nodes, selectivity drift, cache hit
//	                                rates, drop accounting) and audit its
//	                                integrity
//	etlvet passes                   list every registered pass
//
// Every subcommand shares one reporting surface: -format {text,json,sarif}
// (-json is shorthand for -format json), -baseline FILE to suppress
// findings acknowledged in a committed baseline, and -write-baseline to
// regenerate that file from the current findings.
//
// Exit status: 0 when clean (advice-only counts as clean), 1 when any
// warning survives the baseline, 2 on usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"etlopt/internal/analysis"
	"etlopt/internal/dsl"
	"etlopt/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  etlvet workflow [flags] <file.etl>...   audit workflow definitions
  etlvet trace    [flags] <trace.json>... re-verify recorded optimization runs
  etlvet src      [flags] <packages>...   lint Go sources for determinism and
                                          COW/concurrency invariants
  etlvet metrics  [flags] <snap.json> [series]...
                                          validate a -metrics snapshot and
                                          require series
  etlvet obs      [flags] <run.jsonl>...  render a run report from a -journal
                                          flight recording and audit its
                                          integrity
  etlvet passes   [flags]                 list registered passes

flags (shared by every subcommand):
  -format FORM      output format: text (default), json, or sarif (2.1.0)
  -json             shorthand for -format json
  -baseline FILE    suppress findings acknowledged in FILE; only NEW
                    findings are reported and counted
  -write-baseline   rewrite -baseline FILE from the current findings
                    instead of reporting them
  -card-bound N     (workflow only) flag nodes whose estimated cardinality
                    exceeds N x the total source rows (default 10)
  -top N            (obs only) rows shown in the slow-node and drift
                    tables (default 5; 0 = all)

exit status:
  0  clean — no warnings (advice alone never fails)
  1  at least one warning survived the baseline
  2  usage error or unreadable input`)
}

// options are the reporting flags shared by every subcommand.
type options struct {
	format        string
	jsonShorthand bool
	baselinePath  string
	writeBaseline bool
	cardBound     float64
	topK          int
}

func (o *options) bind(fs *flag.FlagSet, cmd string) {
	fs.StringVar(&o.format, "format", "text", "output format: text, json or sarif")
	fs.BoolVar(&o.jsonShorthand, "json", false, "shorthand for -format json")
	fs.StringVar(&o.baselinePath, "baseline", "", "baseline file of acknowledged findings")
	fs.BoolVar(&o.writeBaseline, "write-baseline", false, "rewrite the -baseline file from current findings")
	if cmd == "workflow" {
		fs.Float64Var(&o.cardBound, "card-bound", analysis.DefaultWorkflowOptions().CardinalityBound,
			"cardinality-blowup threshold as a multiple of total source rows")
	}
	if cmd == "obs" {
		fs.IntVar(&o.topK, "top", 5, "rows shown in the slow-node and drift tables (0 = all)")
	}
}

func (o *options) validate() error {
	if o.jsonShorthand {
		o.format = "json"
	}
	switch o.format {
	case "text", "json", "sarif":
	default:
		return fmt.Errorf("unknown -format %q (want text, json or sarif)", o.format)
	}
	if o.writeBaseline && o.baselinePath == "" {
		return fmt.Errorf("-write-baseline needs -baseline FILE")
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	case "workflow", "trace", "src", "metrics", "obs", "passes":
	default:
		usage(stderr)
		return 2
	}

	var o options
	fs := flag.NewFlagSet("etlvet "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	o.bind(fs, cmd)
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if err := o.validate(); err != nil {
		fmt.Fprintf(stderr, "etlvet: %v\n", err)
		return 2
	}
	rest = fs.Args()

	if cmd == "passes" {
		return runPasses(&o, stdout, stderr)
	}
	switch cmd {
	case "workflow", "trace", "metrics", "obs":
		if len(rest) == 0 {
			usage(stderr)
			return 2
		}
	case "src":
		if len(rest) == 0 {
			rest = []string{"./..."}
		}
	}

	var findings []analysis.Finding
	collect := func(arg string, fn func(string) ([]analysis.Finding, error)) bool {
		fs, err := fn(arg)
		if err != nil {
			fmt.Fprintf(stderr, "etlvet: %s: %v\n", arg, err)
			return false
		}
		findings = append(findings, fs...)
		return true
	}
	switch cmd {
	case "workflow":
		opts := analysis.DefaultWorkflowOptions()
		opts.CardinalityBound = o.cardBound
		for _, arg := range rest {
			if !collect(arg, func(path string) ([]analysis.Finding, error) {
				return auditWorkflowFile(path, opts)
			}) {
				return 2
			}
		}
	case "trace":
		for _, arg := range rest {
			if !collect(arg, auditTraceFile) {
				return 2
			}
		}
	case "src":
		for _, arg := range rest {
			if !collect(arg, func(pat string) ([]analysis.Finding, error) {
				return analysis.AnalyzeSource([]string{pat})
			}) {
				return 2
			}
		}
	case "metrics":
		if !collect(rest[0], func(path string) ([]analysis.Finding, error) {
			return auditMetricsFile(path, rest[1:])
		}) {
			return 2
		}
	case "obs":
		// The report renders as it goes (text is the product here); only
		// integrity problems flow through the finding/baseline layer.
		reportTo := stdout
		if o.format != "text" {
			reportTo = io.Discard
		}
		for _, arg := range rest {
			if !collect(arg, func(path string) ([]analysis.Finding, error) {
				return renderObsReport(reportTo, path, o.topK)
			}) {
				return 2
			}
		}
	}

	return report(&o, findings, stdout, stderr)
}

// report applies the baseline and renders the surviving findings in the
// chosen format, returning the process exit code.
func report(o *options, findings []analysis.Finding, stdout, stderr io.Writer) int {
	if o.writeBaseline {
		f, err := os.Create(o.baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "etlvet: %v\n", err)
			return 2
		}
		werr := analysis.WriteBaseline(f, findings)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "etlvet: writing baseline: %v\n", werr)
			return 2
		}
		fmt.Fprintf(stderr, "etlvet: baseline %s rewritten with %d finding(s)\n", o.baselinePath, len(findings))
		return 0
	}
	if o.baselinePath != "" {
		f, err := os.Open(o.baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "etlvet: %v (create it with -write-baseline)\n", err)
			return 2
		}
		base, err := analysis.ReadBaseline(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "etlvet: %s: %v\n", o.baselinePath, err)
			return 2
		}
		suppressed := len(findings)
		findings = base.Filter(findings)
		suppressed -= len(findings)
		if suppressed > 0 && o.format == "text" {
			fmt.Fprintf(stderr, "etlvet: %d baselined finding(s) suppressed\n", suppressed)
		}
	}

	switch o.format {
	case "json":
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "etlvet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "etlvet: %v\n", err)
			return 2
		}
	default:
		if len(findings) == 0 {
			fmt.Fprintln(stdout, "no findings")
		}
		for _, f := range findings {
			prefix := f.File
			if prefix == "" {
				prefix = "<none>"
			}
			fmt.Fprintf(stdout, "%s: %s\n", prefix, f.String())
		}
	}
	if w := analysis.CountWarnings(findings); w > 0 {
		fmt.Fprintf(stderr, "etlvet: %d warning(s)\n", w)
		return 1
	}
	return 0
}

// jsonFinding is the -format json shape of one finding.
type jsonFinding struct {
	Severity string `json:"severity"`
	Check    string `json:"check"`
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Where    string `json:"where,omitempty"`
	Message  string `json:"message"`
	Fix      string `json:"fix,omitempty"`
}

func writeJSON(w io.Writer, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Severity: f.Severity.String(), Check: f.Check,
			File: f.File, Line: f.Line, Col: f.Col,
			Where: f.Where, Message: f.Message, Fix: f.Fix,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(out)
}

// runPasses lists the registry in the chosen format. SARIF output is
// the rule table with zero results — a machine-readable pass inventory.
func runPasses(o *options, stdout, stderr io.Writer) int {
	switch o.format {
	case "json":
		type jsonPass struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
			Doc  string `json:"doc"`
		}
		var out []jsonPass
		for _, p := range analysis.AllPasses() {
			out = append(out, jsonPass{p.Kind().String(), p.Name(), p.Doc()})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "etlvet: %v\n", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(stdout, nil); err != nil {
			fmt.Fprintf(stderr, "etlvet: %v\n", err)
			return 2
		}
	default:
		for _, p := range analysis.AllPasses() {
			fmt.Fprintf(stdout, "%-8s %-22s %s\n", p.Kind(), p.Name(), p.Doc())
		}
	}
	return 0
}

// auditMetricsFile validates a -metrics JSON snapshot: it must parse,
// every instrument must be internally consistent (non-negative counters
// and histogram counts, bucket counts summing to the histogram count,
// finite gauge values), and every series named on the command line must
// be present. Problems come back as warning findings so the shared
// report layer handles formats, baselines and exit codes.
func auditMetricsFile(path string, required []string) ([]analysis.Finding, error) {
	snap, err := obs.ReadSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	var out []analysis.Finding
	report := func(format string, args ...interface{}) {
		out = append(out, analysis.Finding{
			Severity: analysis.Warning, Check: "metrics", Node: -1,
			File: path, Message: fmt.Sprintf(format, args...),
		})
	}
	for _, c := range snap.Counters {
		if c.Value < 0 {
			report("counter %s is negative (%d)", c.Series, c.Value)
		}
	}
	for _, g := range snap.Gauges {
		if math.IsNaN(g.Value) || math.IsInf(g.Value, 0) {
			report("gauge %s is not finite (%v)", g.Series, g.Value)
		}
	}
	for _, h := range snap.Histograms {
		if h.Count < 0 {
			report("histogram %s has negative count (%d)", h.Series, h.Count)
			continue
		}
		if len(h.BucketCounts) != len(h.Bounds)+1 {
			report("histogram %s has %d bucket counts for %d bounds (want bounds+1)",
				h.Series, len(h.BucketCounts), len(h.Bounds))
			continue
		}
		var sum int64
		for _, n := range h.BucketCounts {
			if n < 0 {
				report("histogram %s has a negative bucket count (%d)", h.Series, n)
			}
			sum += n
		}
		if sum != h.Count {
			report("histogram %s bucket counts sum to %d, count is %d", h.Series, sum, h.Count)
		}
	}
	for _, series := range required {
		if !snap.Has(series) {
			report("required series %s is missing", series)
		}
	}
	return out, nil
}

func auditWorkflowFile(path string, opts *analysis.WorkflowOptions) ([]analysis.Finding, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := dsl.Parse(string(src))
	if err != nil {
		return nil, err
	}
	fs, err := analysis.CheckWorkflowOpts(g, opts)
	if err != nil {
		return nil, err
	}
	// Render graph locations with their DSL names rather than raw IDs,
	// and anchor every finding to the audited file for SARIF/baselines.
	names := dsl.NodeNames(g)
	for i := range fs {
		if name, ok := names[fs[i].Node]; fs[i].Node >= 0 && ok {
			fs[i].Node, fs[i].Where = -1, name
		}
		if fs[i].File == "" {
			fs[i].File = path
		}
	}
	return fs, nil
}

func auditTraceFile(path string) ([]analysis.Finding, error) {
	t, err := analysis.ReadTraceFile(path)
	if err != nil {
		return nil, err
	}
	fs, err := analysis.AuditTrace(t)
	if err != nil {
		return nil, err
	}
	for i := range fs {
		if fs[i].File == "" {
			fs[i].File = path
		}
	}
	return fs, nil
}
