package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"etlopt/internal/dsl"
	"etlopt/internal/templates"
)

// buildTool compiles this command into a temp dir once per test.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "etlvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building etlvet: %v\n%s", err, out)
	}
	return bin
}

func writeFig1(t *testing.T) string {
	t.Helper()
	text, err := dsl.Serialize(templates.Fig1Workflow())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig1.etl")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)

	// Fig. 1 audits without warnings (advice only): exit 0.
	out, err := exec.Command(bin, "workflow", writeFig1(t)).CombinedOutput()
	if err != nil {
		t.Errorf("fig1 audit should exit 0: %v\n%s", err, out)
	}

	// An unguarded surrogate key: exit 1 with the located finding.
	bad := filepath.Join(t.TempDir(), "bad.etl")
	src := `
recordset S source rows=100 schema=K,V
recordset T target schema=V,SK
activity sk sk key=K out=SK lookup=L sel=1
flow S -> sk -> T
`
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "workflow", bad).CombinedOutput()
	if err == nil {
		t.Errorf("warning audit should exit nonzero:\n%s", out)
	}
	if !strings.Contains(string(out), "unguarded-surrogate-key") || !strings.Contains(string(out), "a3") {
		t.Errorf("missing located finding:\n%s", out)
	}
}

func TestCLITraceAndSrc(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binaries")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	opt := filepath.Join(dir, "etlopt")
	if out, err := exec.Command("go", "build", "-o", opt, "../etlopt").CombinedOutput(); err != nil {
		t.Fatalf("building etlopt: %v\n%s", err, out)
	}

	// Produce a trace of a full HS run and certify it.
	trace := filepath.Join(dir, "fig1.json")
	if out, err := exec.Command(opt, "-in", writeFig1(t), "-algo", "hs", "-trace", trace).CombinedOutput(); err != nil {
		t.Fatalf("etlopt -trace: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "trace", trace).CombinedOutput()
	if err != nil {
		t.Errorf("certified trace should exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "no findings") {
		t.Errorf("expected clean audit:\n%s", out)
	}

	// Corrupt one recorded cost: the audit must locate it and exit 1.
	var doc map[string]any
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	steps := doc["steps"].([]any)
	steps[0].(map[string]any)["cost"] = 1.0
	raw, err = json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	badTrace := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badTrace, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(bin, "trace", badTrace).CombinedOutput()
	if err == nil {
		t.Errorf("corrupted trace should exit nonzero:\n%s", out)
	}
	if !strings.Contains(string(out), "trace-cost") || !strings.Contains(string(out), "step 0") {
		t.Errorf("missing located trace-cost finding:\n%s", out)
	}

	// The determinism linter over the optimizer's own sources: clean.
	out, err = exec.Command(bin, "src", "../../internal/...").CombinedOutput()
	if err != nil {
		t.Errorf("src lint should be clean: %v\n%s", err, out)
	}
}

func TestCLIUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	if out, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Errorf("no arguments should exit nonzero:\n%s", out)
	}
	out, err := exec.Command(bin, "passes").CombinedOutput()
	if err != nil {
		t.Fatalf("passes: %v\n%s", err, out)
	}
	for _, want := range []string{"map-iteration", "trace-guard", "unresolved-reference"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("passes output missing %q:\n%s", want, out)
		}
	}
}
