package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"etlopt/internal/obs"
)

// writeObsJournal records a small but fully populated flight-recorder
// journal — every event type the report has a section for — and returns
// its path.
func writeObsJournal(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := obs.NewJournalFile(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Emit(obs.RunEvent("start", "search/HS"))
	j.Emit(obs.PhaseEvent("expand", "start"))
	for i := 0; i < 4; i++ {
		j.Emit(obs.TransitionEvent("SWA", "attempt", 0))
	}
	j.Emit(obs.TransitionEvent("SWA", "accept", 0))
	j.Emit(obs.TransitionEvent("SWA", "prune", 0))
	j.Emit(obs.TransitionEvent("SWA", "best", 41.5))
	j.Emit(obs.TransitionEvent("FAC", "attempt", 0))
	j.Emit(obs.CacheEvent("expand", true))
	j.Emit(obs.CacheEvent("expand", false))
	j.Emit(obs.CacheEvent("expand", false))
	j.Emit(obs.PhaseEvent("expand", "end"))
	j.Emit(obs.RunEvent("end", "search/HS"))
	j.Emit(obs.RunEvent("start", "engine/parallel"))
	j.Emit(obs.NodeEvent("extract", 100, 0.25))
	j.Emit(obs.NodeEvent("extract", 100, 0.25))
	j.Emit(obs.NodeEvent("filter", 40, 0.5))
	j.Emit(obs.NodeEvent("load", 40, 0.01))
	j.Emit(obs.BatchEvent("filter", 1, 20))
	j.Emit(obs.BatchEvent("filter", 0, 20))
	j.Emit(obs.ExchangeEvent("join", 37))
	j.Emit(obs.CheckpointEvent("filter", "staged", 40))
	j.Emit(obs.SharedCacheEvent("lookup", 0))
	j.Emit(obs.SharedCacheEvent("miss", 0))
	j.Emit(obs.SharedCacheEvent("admit", 640))
	j.Emit(obs.SharedCacheEvent("lookup", 0))
	j.Emit(obs.SharedCacheEvent("hit", 640))
	j.Emit(obs.SharedCacheEvent("spill", 640))
	j.Emit(obs.SharedCacheEvent("evict", 640))
	j.Emit(obs.FaultEvent("filter", 1, "emit", "transient"))
	j.Emit(obs.FaultEvent("join", 0, "exchange", "transient"))
	j.Emit(obs.RetryEvent("filter", 2, 0.002, "fault: injected transient fault"))
	j.Emit(obs.ResumeEvent("extract", 100))
	j.Emit(obs.DriftEvent("filter", 0.4, 0.5))
	j.Emit(obs.DriftEvent("load", 1.0, 1.0))
	j.Emit(obs.RunEvent("end", "engine/parallel"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestObsReportSections: a well-formed journal renders every report
// section, audits clean, and exits 0.
func TestObsReportSections(t *testing.T) {
	path := writeObsJournal(t)
	out, errb, code := runCLI(t, "obs", path)
	if code != 0 {
		t.Fatalf("clean journal should exit 0, got %d\nstdout: %s\nstderr: %s", code, out, errb)
	}
	for _, want := range []string{
		"== " + path + " ==",
		"run start search/HS",
		"run end   engine/parallel",
		"phase timeline:",
		"expand",
		"transition funnel:",
		"SWA",
		"cache hit rates:",
		"33.3%",
		"shared cache activity:",
		"640 byte(s) of recomputation saved",
		"slow node(s) of 3",
		"filter",
		"selectivity drift (observed vs modeled)",
		"engine activity:",
		"2 partition batch(es)",
		"37 row(s) through repartition exchanges",
		"1 checkpoint node(s) staged",
		"fault & recovery activity:",
		"1 fault(s) injected at emit (transient)",
		"1 fault(s) injected at exchange (transient)",
		"1 retry attempt(s), 0.0020s total backoff",
		"1 node(s) resumed from checkpoint, 100 row(s) restored",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "no findings") {
		t.Errorf("clean journal should audit clean:\n%s", out)
	}
}

// TestObsTopK: -top trims both the slow-node and the drift tables.
func TestObsTopK(t *testing.T) {
	path := writeObsJournal(t)
	out, _, code := runCLI(t, "obs", "-top", "1", path)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "top 1 slow node(s) of 3") {
		t.Errorf("-top 1 did not trim the node table:\n%s", out)
	}
	if !strings.Contains(out, "top 1 of 2") {
		t.Errorf("-top 1 did not trim the drift table:\n%s", out)
	}
	// The slowest node leads; the cheapest must be cut.
	if !strings.Contains(out, "filter") || strings.Contains(out, "load  ") {
		t.Errorf("wrong node survived -top 1:\n%s", out)
	}
}

// TestObsTruncatedJournal: a journal without its summary trailer (a
// crashed or killed recording run) is a warning and exits 1.
func TestObsTruncatedJournal(t *testing.T) {
	full := writeObsJournal(t)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	path := filepath.Join(t.TempDir(), "truncated.jsonl")
	if err := os.WriteFile(path, []byte(strings.Join(lines[:len(lines)-1], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, code := runCLI(t, "obs", "-format", "json", path)
	if code != 1 {
		t.Fatalf("truncated journal should exit 1, got %d\n%s", code, out)
	}
	fs := decodeFindings(t, out)
	found := false
	for _, f := range fs {
		if f.Check == "obs" && strings.Contains(f.Message, "no summary trailer") {
			found = true
			if f.File != path {
				t.Errorf("finding not anchored to the journal: %q", f.File)
			}
		}
	}
	if !found {
		t.Errorf("want a no-summary-trailer warning, got %v", fs)
	}
}

// TestObsAuditFindings: handcrafted malformed journals surface each
// integrity check, and drop accounting is advice, not a warning.
func TestObsAuditFindings(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, tc := range []struct {
		name, body, want string
		exit             int
	}{
		{"empty", "", "journal is empty", 1},
		{"summary-not-last",
			`{"seq":1,"t":"summary","off":0.2,"events":1}` + "\n" +
				`{"seq":2,"t":"run","off":0.1,"action":"start"}` + "\n",
			"summary event is not the last record", 1},
		{"count-mismatch",
			`{"seq":1,"t":"run","off":0.1,"action":"start"}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":7}` + "\n",
			"summary claims 7 events, file holds 1", 1},
		{"write-errors",
			`{"seq":1,"t":"run","off":0.1,"action":"start"}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":1,"errors":3}` + "\n",
			"3 event(s) lost to write failures", 1},
		{"duplicate-seq",
			`{"seq":5,"t":"run","off":0.1,"action":"start"}` + "\n" +
				`{"seq":5,"t":"run","off":0.2,"action":"end"}` + "\n" +
				`{"seq":6,"t":"summary","off":0.3,"events":2}` + "\n",
			"duplicate event sequence number 5", 1},
		{"negative-offset",
			`{"seq":1,"t":"run","off":-0.5,"action":"start"}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":1}` + "\n",
			"negative time offset", 1},
		{"negative-node-sec",
			`{"seq":1,"t":"node","off":0.1,"node":"x","rows":5,"sec":-1}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":1}` + "\n",
			"node x has negative wall time", 1},
		{"fault-missing-site",
			`{"seq":1,"t":"fault","off":0.1,"node":"x","part":0}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":1}` + "\n",
			"fault event seq 1 lacks site/kind attribution", 1},
		{"shared-hits-exceed-lookups",
			`{"seq":1,"t":"cache","off":0.1,"op":"shared","action":"hit","rows":64}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":1}` + "\n",
			"shared cache journaled 1 hits but only 0 lookups", 1},
		{"shared-evict-exceeds-admit",
			`{"seq":1,"t":"cache","off":0.1,"op":"shared","action":"lookup"}` + "\n" +
				`{"seq":2,"t":"cache","off":0.2,"op":"shared","action":"evict","rows":100}` + "\n" +
				`{"seq":3,"t":"summary","off":0.3,"events":2}` + "\n",
			"shared cache eviction freed 100 bytes but admission only recorded 0", 1},
		{"retry-bad-attempt",
			`{"seq":1,"t":"retry","off":0.1,"node":"x","attempt":1}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":1}` + "\n",
			"retry event seq 1 claims attempt 1; retries start at 2", 1},
		// Drops are legal — the journal is lossy by design — so a
		// drop-only journal is advice and still exits 0.
		{"dropped-is-advice",
			`{"seq":1,"t":"run","off":0.1,"action":"start"}` + "\n" +
				`{"seq":2,"t":"summary","off":0.2,"events":1,"dropped":9}` + "\n",
			"dropped under buffer pressure", 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := write(tc.name+".jsonl", tc.body)
			out, errb, code := runCLI(t, "obs", path)
			if code != tc.exit {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.exit, out, errb)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("findings missing %q:\nstdout: %s", tc.want, out)
			}
		})
	}
}

// TestObsUnreadableJournal: a missing file is an operational error
// (exit 2), not a finding.
func TestObsUnreadableJournal(t *testing.T) {
	_, errb, code := runCLI(t, "obs", filepath.Join(t.TempDir(), "nope.jsonl"))
	if code != 2 {
		t.Fatalf("missing journal should exit 2, got %d\nstderr: %s", code, errb)
	}
}

// TestBadRatio pins the non-finite guard used by the drift audit.
func TestBadRatio(t *testing.T) {
	if badRatio(0.5) || badRatio(0) || badRatio(-3) {
		t.Error("finite values flagged as bad")
	}
	nan := func() float64 { z := 0.0; return z / z }()
	inf := func() float64 { z := 0.0; return 1 / z }()
	if !badRatio(nan) || !badRatio(inf) || !badRatio(-inf) {
		t.Error("non-finite values not flagged")
	}
}
