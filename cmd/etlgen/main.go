// Command etlgen generates synthetic ETL workflow definitions in the size
// bands of the paper's experimental suite (§4.2) and writes them as .etl
// files that etlopt can optimize.
//
// Usage:
//
//	etlgen -category small|medium|large -n 5 -seed 7 -dir out/ [-metrics snap.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"etlopt/internal/dsl"
	"etlopt/internal/generator"
	"etlopt/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etlgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		category = flag.String("category", "small", "workflow size band: small, medium or large")
		n        = flag.Int("n", 1, "number of workflows to generate")
		seed     = flag.Int64("seed", 1, "base random seed")
		dir      = flag.String("dir", ".", "output directory")
		metrics  = flag.String("metrics", "", "write a JSON metrics snapshot of the generation run here")
	)
	flag.Parse()

	var cat generator.Category
	switch *category {
	case "small":
		cat = generator.Small
	case "medium":
		cat = generator.Medium
	case "large":
		cat = generator.Large
	default:
		return fmt.Errorf("unknown category %q", *category)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	scenarios, err := generator.Suite(cat, *n, *seed)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
	}
	for i, sc := range scenarios {
		text, err := dsl.Serialize(sc.Graph)
		if err != nil {
			return err
		}
		name := filepath.Join(*dir, fmt.Sprintf("%s-%02d.etl", *category, i+1))
		if err := os.WriteFile(name, []byte(text), 0o644); err != nil {
			return err
		}
		reg.Counter("gen_workflows_total", "category", *category).Inc()
		reg.Counter("gen_activities_total", "category", *category).Add(int64(len(sc.Graph.Activities())))
		reg.Counter("gen_nodes_total", "category", *category).Add(int64(sc.Graph.Len()))
		fmt.Printf("wrote %s (%d activities, %d nodes)\n",
			name, len(sc.Graph.Activities()), sc.Graph.Len())
	}
	if *metrics != "" {
		if err := reg.Snapshot().WriteJSONFile(*metrics); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metrics)
	}
	return nil
}
