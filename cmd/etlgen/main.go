// Command etlgen generates synthetic ETL workflow definitions in the size
// bands of the paper's experimental suite (§4.2) and writes them as .etl
// files that etlopt can optimize.
//
// Usage:
//
//	etlgen -category small|medium|large -n 5 -seed 7 -dir out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"etlopt/internal/dsl"
	"etlopt/internal/generator"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etlgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		category = flag.String("category", "small", "workflow size band: small, medium or large")
		n        = flag.Int("n", 1, "number of workflows to generate")
		seed     = flag.Int64("seed", 1, "base random seed")
		dir      = flag.String("dir", ".", "output directory")
	)
	flag.Parse()

	var cat generator.Category
	switch *category {
	case "small":
		cat = generator.Small
	case "medium":
		cat = generator.Medium
	case "large":
		cat = generator.Large
	default:
		return fmt.Errorf("unknown category %q", *category)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	scenarios, err := generator.Suite(cat, *n, *seed)
	if err != nil {
		return err
	}
	for i, sc := range scenarios {
		text, err := dsl.Serialize(sc.Graph)
		if err != nil {
			return err
		}
		name := filepath.Join(*dir, fmt.Sprintf("%s-%02d.etl", *category, i+1))
		if err := os.WriteFile(name, []byte(text), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d activities, %d nodes)\n",
			name, len(sc.Graph.Activities()), sc.Graph.Len())
	}
	return nil
}
