// Command etlgen generates synthetic ETL workflow definitions in the size
// bands of the paper's experimental suite (§4.2) and writes them as .etl
// files that etlopt can optimize.
//
// Usage:
//
//	etlgen -category small|medium|large -n 5 -seed 7 -dir out/
//	       [-data datadir/] [-metrics snap.json]
//
// With -data, the generated source rows and surrogate-key lookup tables
// are also written as <datadir>/<name>.csv, so the emitted workflows are
// directly executable: etlrun -in out/small-01.etl -data datadir.
//
// With -suite N, etlgen instead emits N workflows that share their
// extract/clean prefix — identical sources, source data and branch
// pipelines, diverging post-union — the shape etlrun's suite mode and the
// shared-work scheduler exploit:
//
//	etlgen -category small -suite 3 -seed 7 -dir out/ -data datadir/
//	etlrun -data datadir out/small-shared-01.etl out/small-shared-02.etl out/small-shared-03.etl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/generator"
	"etlopt/internal/obs"
	"etlopt/internal/templates"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etlgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		category = flag.String("category", "small", "workflow size band: small, medium or large")
		n        = flag.Int("n", 1, "number of workflows to generate")
		seed     = flag.Int64("seed", 1, "base random seed")
		dir      = flag.String("dir", ".", "output directory")
		dataDir  = flag.String("data", "", "also write each scenario's source and lookup rows as <dir>/<name>.csv for etlrun")
		metrics  = flag.String("metrics", "", "write a JSON metrics snapshot of the generation run here")
		suite    = flag.Int("suite", 0, "emit this many workflows sharing their extract/clean prefix (overrides -n)")
	)
	flag.Parse()

	var cat generator.Category
	switch *category {
	case "small":
		cat = generator.Small
	case "medium":
		cat = generator.Medium
	case "large":
		cat = generator.Large
	default:
		return fmt.Errorf("unknown category %q", *category)
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	var scenarios []*templates.Scenario
	var err error
	stem := *category
	if *suite > 0 {
		scenarios, err = generator.SharedSuite(cat, *suite, *seed)
		stem = *category + "-shared"
	} else {
		scenarios, err = generator.Suite(cat, *n, *seed)
	}
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
	}
	for i, sc := range scenarios {
		text, err := dsl.Serialize(sc.Graph)
		if err != nil {
			return err
		}
		name := filepath.Join(*dir, fmt.Sprintf("%s-%02d.etl", stem, i+1))
		if err := os.WriteFile(name, []byte(text), 0o644); err != nil {
			return err
		}
		if *dataDir != "" {
			// Scenarios reuse recordset names (SRC1, SKLOOKUP, ...) with
			// per-scenario schemas, so each workflow gets its own data
			// directory: etlrun -in small-01.etl -data <datadir>/small-01.
			// Suite members follow the same convention, which is exactly
			// what etlrun's suite mode resolves per workflow basename.
			sub := filepath.Join(*dataDir, fmt.Sprintf("%s-%02d", stem, i+1))
			if err := writeData(sub, sc); err != nil {
				return err
			}
		}
		reg.Counter("gen_workflows_total", "category", *category).Inc()
		reg.Counter("gen_activities_total", "category", *category).Add(int64(len(sc.Graph.Activities())))
		reg.Counter("gen_nodes_total", "category", *category).Add(int64(sc.Graph.Len()))
		fmt.Printf("wrote %s (%d activities, %d nodes)\n",
			name, len(sc.Graph.Activities()), sc.Graph.Len())
	}
	if *metrics != "" {
		if err := reg.Snapshot().WriteJSONFile(*metrics); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metrics)
	}
	return nil
}

// writeData materializes the scenario's source and lookup rows as CSV
// record files named like etlrun's binding convention
// (<dir>/<recordset>.csv), truncating any file left by a previous run.
func writeData(dir string, sc *templates.Scenario) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(bindings map[string]data.Rows) error {
		names := make([]string, 0, len(bindings))
		for name := range bindings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			path := filepath.Join(dir, strings.ReplaceAll(name, string(filepath.Separator), "_")+".csv")
			os.Remove(path)
			rs, err := data.NewFileRecordset(name, sc.Schemas[name], path)
			if err != nil {
				return err
			}
			if err := rs.Load(bindings[name]); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d rows)\n", path, len(bindings[name]))
		}
		return nil
	}
	if err := write(sc.Sources); err != nil {
		return err
	}
	return write(sc.Lookups)
}
