package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"etlopt/internal/dsl"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "etlgen")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building etlgen: %v\n%s", err, out)
	}
	return bin
}

func TestCLIGenerateParsesBack(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	out, err := exec.Command(bin, "-category", "small", "-n", "2", "-seed", "3", "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("generated %d files, want 2", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".etl") {
			t.Errorf("unexpected file %s", e.Name())
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		g, err := dsl.Parse(string(text))
		if err != nil {
			t.Errorf("%s does not parse: %v", e.Name(), err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", e.Name(), err)
		}
	}
}

func TestCLIGenerateBadCategory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	if err := exec.Command(bin, "-category", "gigantic").Run(); err == nil {
		t.Error("unknown category should fail")
	}
}
