package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"etlopt/internal/dsl"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "etlgen")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building etlgen: %v\n%s", err, out)
	}
	return bin
}

func TestCLIGenerateParsesBack(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	out, err := exec.Command(bin, "-category", "small", "-n", "2", "-seed", "3", "-dir", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("generated %d files, want 2", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".etl") {
			t.Errorf("unexpected file %s", e.Name())
		}
		text, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		g, err := dsl.Parse(string(text))
		if err != nil {
			t.Errorf("%s does not parse: %v", e.Name(), err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", e.Name(), err)
		}
	}
}

func TestCLIGenerateBadCategory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	if err := exec.Command(bin, "-category", "gigantic").Run(); err == nil {
		t.Error("unknown category should fail")
	}
}

// TestCLIGenerateSharedSuite covers -suite: the emitted workflows must
// parse, validate, and actually share their extract/clean prefix — same
// source data files, diverging post-union pipelines.
func TestCLIGenerateSharedSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	dataDir := t.TempDir()
	out, err := exec.Command(bin, "-category", "small", "-suite", "2", "-seed", "9",
		"-dir", dir, "-data", dataDir).CombinedOutput()
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	var texts []string
	for i := 1; i <= 2; i++ {
		name := filepath.Join(dir, "small-shared-0"+string(rune('0'+i))+".etl")
		text, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := dsl.Parse(string(text))
		if err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
		texts = append(texts, string(text))
	}
	if texts[0] == texts[1] {
		t.Error("suite members are wholesale copies; post-union pipelines should diverge")
	}
	src1, err := os.ReadFile(filepath.Join(dataDir, "small-shared-01", "SRC1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	src2, err := os.ReadFile(filepath.Join(dataDir, "small-shared-02", "SRC1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(src1) != string(src2) {
		t.Error("suite members do not share source data")
	}
}
