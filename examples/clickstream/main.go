// Clickstream: a web-analytics ETL scenario. Two log sources (web and
// mobile) are cleaned — status filtering, URL normalization, bot
// removal — unified, aggregated into daily per-page hit counts and loaded
// into a warehouse fact table. The example contrasts all three search
// algorithms on the same workflow and runs the optimized plan through the
// pipelined engine.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"etlopt/internal/algebra"
	"etlopt/internal/core"
	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

// buildWorkflow declares the clickstream ETL graph.
func buildWorkflow() *workflow.Graph {
	g := workflow.NewGraph()
	schema := data.Schema{"TS", "URL", "STATUS", "AGENT", "BYTES"}

	web := g.AddRecordset(&workflow.RecordsetRef{
		Name: "WEB_LOG", Schema: schema, Rows: 500_000, IsSource: true,
	})
	mob := g.AddRecordset(&workflow.RecordsetRef{
		Name: "MOBILE_LOG", Schema: schema, Rows: 200_000, IsSource: true,
	})

	// Per-branch cleaning. Both branches run the same bot filter — a
	// factorization candidate the optimizer can exploit.
	botFilter := func() *workflow.Activity {
		return templates.Filter(algebra.Cmp{
			Op:    algebra.NE,
			Left:  algebra.Attr{Name: "AGENT"},
			Right: algebra.Const{Value: data.NewString("bot")},
		}, 0.8)
	}
	okOnly := func() *workflow.Activity {
		return templates.Filter(algebra.Cmp{
			Op:    algebra.EQ,
			Left:  algebra.Attr{Name: "STATUS"},
			Right: algebra.Const{Value: data.NewInt(200)},
		}, 0.7)
	}

	wNorm := g.AddActivity(templates.Reformat("lower", "URL"))
	wOK := g.AddActivity(okOnly())
	wBot := g.AddActivity(botFilter())
	mNorm := g.AddActivity(templates.Reformat("lower", "URL"))
	mOK := g.AddActivity(okOnly())
	mBot := g.AddActivity(botFilter())

	u := g.AddActivity(templates.Union())

	// Post-union: drop payload size, count hits per (URL, TS) and keep
	// pages with real traffic.
	drop := g.AddActivity(templates.ProjectOut("BYTES", "AGENT", "STATUS"))
	agg := g.AddActivity(templates.Aggregate(
		[]string{"URL", "TS"}, workflow.AggCount, "", "HITS", 0.05))
	busy := g.AddActivity(templates.Threshold("HITS", 2, 0.6))

	dw := g.AddRecordset(&workflow.RecordsetRef{
		Name: "DW.PAGE_HITS", Schema: data.Schema{"URL", "TS", "HITS"}, IsTarget: true,
	})

	g.MustAddEdge(web, wNorm)
	g.MustAddEdge(wNorm, wOK)
	g.MustAddEdge(wOK, wBot)
	g.MustAddEdge(mob, mNorm)
	g.MustAddEdge(mNorm, mOK)
	g.MustAddEdge(mOK, mBot)
	g.MustAddEdge(wBot, u)
	g.MustAddEdge(mBot, u)
	g.MustAddEdge(u, drop)
	g.MustAddEdge(drop, agg)
	g.MustAddEdge(agg, busy)
	g.MustAddEdge(busy, dw)
	if err := g.RegenerateSchemata(); err != nil {
		log.Fatal(err)
	}
	return g
}

// logRows fabricates deterministic log records.
func logRows(n int, agentBias int) data.Rows {
	urls := []string{"/home", "/Pricing", "/docs", "/BLOG", "/contact"}
	days := []string{"2026-07-01", "2026-07-02", "2026-07-03"}
	rows := make(data.Rows, 0, n)
	for i := 0; i < n; i++ {
		agent := "browser"
		if i%agentBias == 0 {
			agent = "bot"
		}
		status := int64(200)
		if i%9 == 0 {
			status = 404
		}
		rows = append(rows, data.Record{
			data.NewString(days[i%len(days)]),
			data.NewString(urls[i%len(urls)]),
			data.NewInt(status),
			data.NewString(agent),
			data.NewInt(int64(500 + i%4096)),
		})
	}
	return rows
}

func main() {
	g := buildWorkflow()
	fmt.Println("clickstream workflow:", g.Signature())
	fmt.Printf("local groups: %v\n", g.LocalGroups())
	fmt.Printf("homologous pairs (factorization candidates): %d\n", len(g.FindHomologousPairs()))

	// Compare the three algorithms.
	type row struct {
		name string
		res  *core.Result
	}
	var rows []row
	es, err := core.Exhaustive(context.Background(), g, core.Options{MaxStates: 30_000, IncrementalCost: true})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"ES", es})
	hs, err := core.Heuristic(context.Background(), g, core.Options{IncrementalCost: true})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"HS", hs})
	hsg, err := core.HSGreedy(context.Background(), g, core.Options{IncrementalCost: true})
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"HS-Greedy", hsg})

	fmt.Printf("\n%-10s %14s %14s %8s %9s %10s\n", "algorithm", "initial cost", "final cost", "impr %", "states", "time")
	for _, r := range rows {
		fmt.Printf("%-10s %14.0f %14.0f %7.1f%% %9d %10v\n",
			r.name, r.res.InitialCost, r.res.BestCost, r.res.Improvement(),
			r.res.Visited, r.res.Elapsed.Round(time.Microsecond))
	}

	best := es.Best
	fmt.Println("\noptimized workflow:")
	fmt.Print(best)

	// Execute through the pipelined engine.
	bindings := map[string]data.Recordset{
		"WEB_LOG": data.NewMemoryRecordset("WEB_LOG",
			data.Schema{"TS", "URL", "STATUS", "AGENT", "BYTES"}).MustLoad(logRows(3000, 10)),
		"MOBILE_LOG": data.NewMemoryRecordset("MOBILE_LOG",
			data.Schema{"TS", "URL", "STATUS", "AGENT", "BYTES"}).MustLoad(logRows(1200, 7)),
	}
	run, err := engine.New(bindings, engine.WithMode(engine.Pipelined)).Run(context.Background(), best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipelined execution: %d page-day rows in %v\n",
		len(run.Targets["DW.PAGE_HITS"]), run.Elapsed.Round(time.Microsecond))
	for i, r := range run.Targets["DW.PAGE_HITS"] {
		if i == 6 {
			fmt.Println("   ...")
			break
		}
		fmt.Println("  ", r)
	}

	ok, diff, err := equiv.VerifyEmpirical(g, best, bindings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized plan equivalent to the original: %v %s\n", ok, diff)
}
