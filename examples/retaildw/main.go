// Retaildw: a multi-source retail warehouse load exercising the wider
// template library — surrogate keys with a shared lookup, a lookup-based
// primary-key check against already-loaded keys, a difference against an
// exclusion list, and a dimension join — defined in the workflow DSL and
// optimized from its textual form.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"etlopt/internal/core"
	"etlopt/internal/data"
	"etlopt/internal/dsl"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
)

const workflowText = `
# Three store feeds, in Dollars; the warehouse keeps Euros.
recordset STORE_NORTH source rows=80000 schema=SKU,QTY,DPRICE,DATE
recordset STORE_SOUTH source rows=120000 schema=SKU,QTY,DPRICE,DATE
recordset STORE_WEB   source rows=400000 schema=SKU,QTY,DPRICE,DATE
recordset RECALLED    source rows=50     schema=SKU
recordset PRODUCT_DIM source rows=500    schema=PSK,CATEGORY
recordset DW.SALES target schema=PSK,QTY,EPRICE,DATE,CATEGORY

# Per-branch cleaning.
activity n_nn  notnull attrs=SKU sel=0.99
activity n_c   convert fn=dollar2euro args=DPRICE out=EPRICE sel=1
activity s_nn  notnull attrs=SKU sel=0.99
activity s_c   convert fn=dollar2euro args=DPRICE out=EPRICE sel=1
activity w_nn  notnull attrs=SKU sel=0.99
activity w_c   convert fn=dollar2euro args=DPRICE out=EPRICE sel=1

activity u1 union
activity u2 union

# Converged pipeline: drop recalled SKUs, assign surrogate keys, reject
# rows already in the warehouse, keep real sales, join the product
# dimension.
activity norecall diff keys=SKU sel=0.98
activity sk sk key=SKU out=PSK lookup=SKU2PSK sel=1
activity fresh pkcheck attrs=PSK lookup=DWKEYS sel=0.9
activity sold filter pred="QTY >= 1 and EPRICE >= 0.5" sel=0.4
activity dim join keys=PSK sel=0.002

flow STORE_NORTH -> n_nn -> n_c -> u1
flow STORE_SOUTH -> s_nn -> s_c -> u1
flow STORE_WEB   -> w_nn -> w_c -> u2
flow u1 -> u2
flow u2 -> norecall
flow RECALLED -> norecall
flow norecall -> sk -> fresh -> sold -> dim
flow PRODUCT_DIM -> dim
flow dim -> DW.SALES
`

func main() {
	g, err := dsl.Parse(workflowText)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("retail workflow parsed from DSL:", g.Signature())

	hs, err := core.Heuristic(context.Background(), g, core.Options{IncrementalCost: true, MaxStates: 20_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HS: cost %.0f -> %.0f (%.1f%%), %d states, %v\n",
		hs.InitialCost, hs.BestCost, hs.Improvement(), hs.Visited,
		hs.Elapsed.Round(time.Millisecond))
	fmt.Println("\noptimized plan:")
	fmt.Print(hs.Best)

	// Round-trip the optimized plan through the DSL.
	optText, err := dsl.Serialize(hs.Best)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := dsl.Parse(optText); err != nil {
		log.Fatalf("optimized plan does not re-parse: %v", err)
	}
	fmt.Println("optimized plan serializes and re-parses ✓")

	// Build executable data.
	bindings := buildBindings()
	run, err := engine.New(bindings).Run(context.Background(), hs.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDW.SALES rows: %d\n", len(run.Targets["DW.SALES"]))
	for i, r := range run.Targets["DW.SALES"] {
		if i == 5 {
			fmt.Println("   ...")
			break
		}
		fmt.Println("  ", r)
	}

	ok, diff, err := equiv.VerifyEmpirical(g, hs.Best, bindings)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("optimized retail plan diverged: %s", diff)
	}
	fmt.Println("\noriginal and optimized plans load identical records ✓")
}

// buildBindings fabricates store feeds, the recall list, the SKU→PSK
// lookup, the warehouse key set and the product dimension.
func buildBindings() map[string]data.Recordset {
	storeSchema := data.Schema{"SKU", "QTY", "DPRICE", "DATE"}
	mkStore := func(name string, n, bias int) data.Recordset {
		rows := make(data.Rows, 0, n)
		for i := 0; i < n; i++ {
			sku := data.NewInt(int64(i*bias%40 + 1))
			if i%29 == 0 {
				sku = data.Null // exercises NN(SKU)
			}
			qty := int64(i % 4) // zero quantities exercise the sales filter
			rows = append(rows, data.Record{
				sku,
				data.NewInt(qty),
				data.NewFloat(float64(i%200) / 2),
				data.NewString(fmt.Sprintf("2026-07-%02d", i%28+1)),
			})
		}
		return data.NewMemoryRecordset(name, storeSchema).MustLoad(rows)
	}

	recalled := data.NewMemoryRecordset("RECALLED", data.Schema{"SKU"}).MustLoad(data.Rows{
		{data.NewInt(13)}, {data.NewInt(27)},
	})

	lookup := data.NewMemoryRecordset("SKU2PSK", data.Schema{"SKU", "PSK"})
	dim := data.NewMemoryRecordset("PRODUCT_DIM", data.Schema{"PSK", "CATEGORY"})
	cats := []string{"toys", "food", "tools"}
	var lkRows, dimRows data.Rows
	for sku := 1; sku <= 40; sku++ {
		psk := int64(9000 + sku)
		lkRows = append(lkRows, data.Record{data.NewInt(int64(sku)), data.NewInt(psk)})
		dimRows = append(dimRows, data.Record{data.NewInt(psk), data.NewString(cats[sku%len(cats)])})
	}
	lookup.MustLoad(lkRows)
	dim.MustLoad(dimRows)

	dwKeys := data.NewMemoryRecordset("DWKEYS", data.Schema{"PSK"}).MustLoad(data.Rows{
		{data.NewInt(9001)}, {data.NewInt(9002)},
	})

	return map[string]data.Recordset{
		"STORE_NORTH": mkStore("STORE_NORTH", 400, 3),
		"STORE_SOUTH": mkStore("STORE_SOUTH", 600, 7),
		"STORE_WEB":   mkStore("STORE_WEB", 900, 11),
		"RECALLED":    recalled,
		"SKU2PSK":     lookup,
		"PRODUCT_DIM": dim,
		"DWKEYS":      dwKeys,
	}
}
