// Quickstart: build a small ETL workflow programmatically, optimize it
// with the heuristic search, execute both versions on in-memory data and
// confirm they load identical records.
//
// The workflow cleans an orders feed: drop records without a customer id,
// convert Dollar amounts to Euros, keep only amounts of at least 50 €,
// and load the result into DW.ORDERS.
package main

import (
	"fmt"
	"log"

	"etlopt/internal/core"
	"etlopt/internal/data"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

func main() {
	// 1. Declare the workflow graph: ORDERS → NN(CUST) → $2€ → σ(EAMT≥50) → DW.
	g := workflow.NewGraph()
	schema := data.Schema{"ORDER_ID", "CUST", "DAMT"}

	orders := g.AddRecordset(&workflow.RecordsetRef{
		Name: "ORDERS", Schema: schema, Rows: 10_000, IsSource: true,
	})
	nn := g.AddActivity(templates.NotNull(0.95, "CUST"))
	conv := g.AddActivity(templates.Convert("dollar2euro", "EAMT", "DAMT"))
	sigma := g.AddActivity(templates.Threshold("EAMT", 50, 0.3))
	dw := g.AddRecordset(&workflow.RecordsetRef{
		Name: "DW.ORDERS", Schema: data.Schema{"ORDER_ID", "CUST", "EAMT"}, IsTarget: true,
	})
	g.MustAddEdge(orders, nn)
	g.MustAddEdge(nn, conv)
	g.MustAddEdge(conv, sigma)
	g.MustAddEdge(sigma, dw)
	if err := g.RegenerateSchemata(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("initial workflow:", g.Signature())

	// 2. Optimize. The selection cannot jump the conversion that produces
	// EAMT (the paper's condition 3), but the NN check can move around.
	res, err := core.Heuristic(g, core.Options{IncrementalCost: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized workflow: %s\n", res.Best.Signature())
	fmt.Printf("cost: %.0f -> %.0f (%.1f%% better, %d states visited)\n",
		res.InitialCost, res.BestCost, res.Improvement(), res.Visited)

	// 3. Execute both versions on the same data.
	rows := data.Rows{
		{data.NewInt(1), data.NewString("acme"), data.NewFloat(40)},
		{data.NewInt(2), data.NewString("acme"), data.NewFloat(90)},
		{data.NewInt(3), data.Null, data.NewFloat(200)}, // no customer: dropped
		{data.NewInt(4), data.NewString("zeta"), data.NewFloat(55.5)},
		{data.NewInt(5), data.NewString("zeta"), data.NewFloat(70)},
	}
	bindings := map[string]data.Recordset{
		"ORDERS": data.NewMemoryRecordset("ORDERS", schema).MustLoad(rows),
	}

	run, err := engine.New(bindings).Run(res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nloaded into DW.ORDERS:")
	for _, r := range run.Targets["DW.ORDERS"] {
		fmt.Println("  ", r)
	}

	// 4. The optimizer's own guarantee, checked empirically.
	ok, diff, err := equiv.VerifyEmpirical(g, res.Best, bindings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginal and optimized workflows agree on the data: %v %s\n", ok, diff)
}
