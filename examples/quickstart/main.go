// Quickstart: declare a small ETL workflow in the DSL, optimize it with
// the heuristic search, execute both versions on in-memory data and
// confirm they load identical records — all through the public pkg/etl
// facade.
//
// The workflow cleans an orders feed: drop records without a customer id,
// convert Dollar amounts to Euros, keep only amounts of at least 50 €,
// and load the result into DW.ORDERS.
package main

import (
	"context"
	"fmt"
	"log"

	"etlopt/pkg/etl"
)

const workflowDSL = `
recordset ORDERS source rows=10000 schema=ORDER_ID,CUST,DAMT
activity nn notnull attrs=CUST sel=0.95
activity conv convert fn=dollar2euro args=DAMT out=EAMT
activity keep filter pred="EAMT >= 50" sel=0.3
recordset DW.ORDERS target schema=ORDER_ID,CUST,EAMT
flow ORDERS -> nn -> conv -> keep -> DW.ORDERS
`

func main() {
	ctx := context.Background()

	// 1. Parse the workflow: ORDERS → NN(CUST) → $2€ → σ(EAMT≥50) → DW.
	g, err := etl.Parse(workflowDSL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial workflow:", g.Signature())

	// 2. Optimize. The selection cannot jump the conversion that produces
	// EAMT (the paper's condition 3), but the NN check can move around.
	res, err := etl.Optimize(ctx, g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized workflow: %s\n", res.Best.Signature())
	fmt.Printf("cost: %.0f -> %.0f (%.1f%% better, %d states visited)\n",
		res.InitialCost, res.BestCost, res.Improvement(), res.Visited)

	// 3. Execute the optimized version on real data.
	rows := etl.Rows{
		{etl.NewInt(1), etl.NewString("acme"), etl.NewFloat(40)},
		{etl.NewInt(2), etl.NewString("acme"), etl.NewFloat(90)},
		{etl.NewInt(3), etl.Null, etl.NewFloat(200)}, // no customer: dropped
		{etl.NewInt(4), etl.NewString("zeta"), etl.NewFloat(55.5)},
		{etl.NewInt(5), etl.NewString("zeta"), etl.NewFloat(70)},
	}
	bindings := map[string]etl.Recordset{
		"ORDERS": etl.NewMemoryRecordset("ORDERS", etl.Schema{"ORDER_ID", "CUST", "DAMT"}).MustLoad(rows),
	}
	// Partition-parallel execution: the recordset is split 8 ways, yet the
	// loaded rows are bit-identical to a materialized run at any count.
	run, err := etl.Run(ctx, res.Best, bindings, etl.WithPartitions(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nloaded into DW.ORDERS:")
	for _, r := range run.Targets["DW.ORDERS"] {
		fmt.Println("  ", r)
	}

	// 4. The optimizer's own guarantee, checked empirically.
	ok, diff, err := etl.VerifyEmpirical(g, res.Best, bindings)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noriginal and optimized workflows agree on the data: %v %s\n", ok, diff)
}
