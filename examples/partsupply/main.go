// Partsupply reproduces the paper's running example end to end: the
// Fig. 1 workflow (monthly Euro costs from S1, daily Dollar costs from
// S2), its naming-principle setup, the exhaustive optimization that
// rediscovers Fig. 2, and the empirical proof that both workflows load
// the same records.
package main

import (
	"context"
	"fmt"
	"log"

	"etlopt/internal/core"
	"etlopt/internal/engine"
	"etlopt/internal/equiv"
	"etlopt/internal/naming"
	"etlopt/internal/templates"
	"etlopt/internal/workflow"
)

func main() {
	// The naming principle (§3.1): PARTS1.COST and PARTS2.COST are
	// homonyms (Euros vs Dollars) and must map to different reference
	// names; the DATE columns are the same grouper entity in both formats.
	reg := naming.NewRegistry()
	for _, ref := range []string{"PKEY", "SOURCE", "DATE", "ECOST", "DCOST", "DEPT"} {
		if err := reg.Declare(ref); err != nil {
			log.Fatal(err)
		}
	}
	for _, m := range [][3]string{
		{"PARTS1", "PKEY", "PKEY"}, {"PARTS1", "SOURCE", "SOURCE"},
		{"PARTS1", "DATE", "DATE"}, {"PARTS1", "COST", "ECOST"},
		{"PARTS2", "PKEY", "PKEY"}, {"PARTS2", "SOURCE", "SOURCE"},
		{"PARTS2", "DATE", "DATE"}, {"PARTS2", "COST", "DCOST"},
		{"PARTS2", "DEPT", "DEPT"},
	} {
		if err := reg.Map(m[0], m[1], m[2]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("reference attribute names Ωn:", reg.RefNames())
	for _, h := range reg.Homonyms() {
		fmt.Println("homonym detected:", h)
	}

	// The Fig. 1 workflow over reference names.
	sc := templates.Fig1Scenario(400, 1200)
	g := sc.Graph
	fmt.Println("\nFig. 1 workflow (signature", g.Signature()+"):")
	fmt.Print(g)

	// Optimize exhaustively — the space is small enough to close.
	res, err := core.Exhaustive(context.Background(), g, core.Options{MaxStates: 50_000, IncrementalCost: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nES closed the space: %v (%d distinct states)\n", res.Terminated, res.Visited)
	fmt.Printf("cost %.0f -> %.0f (%.1f%% improvement)\n",
		res.InitialCost, res.BestCost, res.Improvement())
	fmt.Println("transition path to the optimum:", res.Trace)
	fmt.Println("\noptimized workflow (the Fig. 2 shape):")
	fmt.Print(res.Best)

	describeFig2(res.Best)

	// Execute both workflows on the generated supplier data.
	bindings := sc.Bind()
	run, err := engine.New(bindings).Run(context.Background(), res.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwarehouse rows loaded: %d\n", len(run.Targets["DW.PARTS"]))
	for i, r := range run.Targets["DW.PARTS"] {
		if i == 5 {
			fmt.Println("   ...")
			break
		}
		fmt.Println("  ", r)
	}

	ok, diff, err := equiv.VerifyEmpirical(g, res.Best, bindings)
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		log.Fatalf("optimized workflow diverged: %s", diff)
	}
	fmt.Println("\nFig. 1 and the optimized workflow load identical records ✓")

	// The symbolic check of §3.4 agrees.
	cond, err := equiv.Condition(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nworkflow post-condition Cond_G:")
	fmt.Println("  " + cond)
}

// describeFig2 reports the two rewrites the paper highlights.
func describeFig2(best *workflow.Graph) {
	filters := 0
	var aggPos, a2ePos int
	order, _ := best.TopoSort()
	for i, id := range order {
		n := best.Node(id)
		if n.Kind != workflow.KindActivity {
			continue
		}
		switch {
		case n.Act.Sem.Op == workflow.OpFilter:
			filters++
		case n.Act.Sem.Op == workflow.OpAggregate:
			aggPos = i
		case n.Act.Sem.Op == workflow.OpFunc && n.Act.InPlace():
			a2ePos = i
		}
	}
	fmt.Println("\nFig. 2 rewrites found by the optimizer:")
	fmt.Printf("  - σ(ECOST≥100) distributed into both branches: %v (%d filter instances)\n",
		filters == 2, filters)
	fmt.Printf("  - aggregation swapped before the A2E date reformat: %v\n", aggPos < a2ePos)
}
